//! The structured experiment-output model every figure/table experiment
//! returns.
//!
//! A [`Report`] is one experiment's complete result: a set of [`Table`]s
//! (what the old per-figure binaries printed as text), a flat map of
//! named scalar [`Report::metrics`] (what the delta/gate tooling
//! compares), and free-form notes. One report renders three ways:
//!
//! * [`Report::render_text`] — the aligned-column console output the
//!   `fig*`/`table*` binaries print;
//! * [`Report::render_markdown`] — the `results/<name>.md` artifact;
//! * [`Report::to_json`] — the machine-readable `results/<name>.json`
//!   artifact (schema [`EXPERIMENT_SCHEMA`]), parseable by
//!   [`crate::json`] and round-trippable via [`Report::from_json`] so
//!   `reproduce --render` can re-emit tables without re-running.
//!
//! Numeric cells carry both a display string (the exact formatting the
//! figure wants) and the underlying value rounded to 9 significant
//! digits ([`sig9`]) so reference comparisons are bit-stable across
//! hosts whose `libm` implementations differ in the last ulp.

// audit: allow-file(secret, `key` here is a metric name in a report, not key material)

use crate::json::Value;

/// Schema identifier emitted in every per-experiment JSON document.
pub const EXPERIMENT_SCHEMA: &str = "toleo-experiment/v1";

/// One table cell: the display text plus, for numeric cells, the
/// machine-readable value.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// What the rendered table shows.
    pub text: String,
    /// The underlying number (rounded via [`sig9`]), when numeric.
    pub num: Option<f64>,
}

impl Cell {
    /// A text-only cell.
    pub fn text(s: impl Into<String>) -> Cell {
        Cell {
            text: s.into(),
            num: None,
        }
    }

    /// A numeric cell displayed with `decimals` fraction digits.
    pub fn num(v: f64, decimals: usize) -> Cell {
        Cell {
            text: format!("{v:.decimals$}"),
            num: finite(v),
        }
    }

    /// An integer-valued cell.
    pub fn int(v: u64) -> Cell {
        Cell {
            text: v.to_string(),
            num: finite(v as f64),
        }
    }

    /// A fraction rendered as a percentage with `decimals` digits; the
    /// stored value stays the raw fraction.
    pub fn pct(fraction: f64, decimals: usize) -> Cell {
        Cell {
            text: format!("{:.decimals$}%", fraction * 100.0),
            num: finite(fraction),
        }
    }

    /// A numeric cell in scientific notation.
    pub fn sci(v: f64) -> Cell {
        Cell {
            text: format!("{v:.1e}"),
            num: finite(v),
        }
    }

    /// A boolean cell (stored as 0/1 so references can diff it).
    pub fn bool(v: bool) -> Cell {
        Cell {
            text: v.to_string(),
            num: Some(if v { 1.0 } else { 0.0 }),
        }
    }
}

fn finite(v: f64) -> Option<f64> {
    v.is_finite().then(|| sig9(v))
}

/// Rounds to 9 significant digits. Reference outputs must be
/// reproducible on any host; the modeled numbers are deterministic
/// arithmetic, but a few derived values go through `ln`/`exp`/`log10`,
/// whose last-ulp behaviour is libm-specific. Nine significant digits
/// keep every real signal and absorb that jitter. Implemented through
/// the decimal formatter (correctly rounded, pure core, no libm), so the
/// result is bit-identical on every platform.
pub fn sig9(v: f64) -> f64 {
    if v == 0.0 || !v.is_finite() {
        return v;
    }
    format!("{v:.8e}").parse().unwrap_or(v)
}

/// One titled table of a report.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells; every row must have `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// An empty table with the given caption and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row(&mut self, cells: Vec<Cell>) {
        debug_assert_eq!(cells.len(), self.columns.len(), "{}", self.title);
        self.rows.push(cells);
    }
}

/// One experiment's complete structured result.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Registry name (`fig6`, `table2`, `throughput`, …).
    pub name: String,
    /// Human title (the old binary's headline line).
    pub title: String,
    /// Memory operations per generated trace for this run (the scale
    /// knob); reference comparisons only apply between equal scales.
    pub mem_ops: u64,
    /// Named scalar results — the delta/gate comparison surface.
    pub metrics: Vec<(String, f64)>,
    /// The rendered tables.
    pub tables: Vec<Table>,
    /// Free-form trailing notes (paper reference values etc.).
    pub notes: Vec<String>,
}

impl Report {
    /// An empty report.
    pub fn new(name: &str, title: impl Into<String>, mem_ops: u64) -> Report {
        Report {
            name: name.to_string(),
            title: title.into(),
            mem_ops,
            metrics: Vec::new(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Records one named scalar (rounded via [`sig9`]; non-finite values
    /// are recorded as 0 with a note so the JSON stays valid).
    pub fn metric(&mut self, key: impl Into<String>, value: f64) {
        let key = key.into();
        if value.is_finite() {
            self.metrics.push((key, sig9(value)));
        } else {
            self.notes.push(format!("metric {key} was non-finite"));
            self.metrics.push((key, 0.0));
        }
    }

    /// Looks up a metric by name.
    pub fn get_metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Aligned-column console rendering (what the thin binaries print).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        for t in &self.tables {
            if !t.title.is_empty() {
                out.push_str(&format!("\n== {} ==\n", t.title));
            } else {
                out.push('\n');
            }
            let mut widths: Vec<usize> = t.columns.iter().map(|c| c.len()).collect();
            for row in &t.rows {
                for (w, c) in widths.iter_mut().zip(row) {
                    *w = (*w).max(c.text.len());
                }
            }
            let header: Vec<String> = t
                .columns
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&header.join("  "));
            out.push('\n');
            for row in &t.rows {
                let line: Vec<String> = row
                    .iter()
                    .zip(&widths)
                    .map(|(c, w)| format!("{:>w$}", c.text))
                    .collect();
                out.push_str(&line.join("  "));
                out.push('\n');
            }
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("({n})\n"));
            }
        }
        out
    }

    /// Markdown rendering — the `results/<name>.md` artifact.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n\n", self.title));
        out.push_str(&format!(
            "_Generated by `reproduce` (experiment `{}`, {} ops/trace). \
             Machine-readable copy: `{}.json`._\n",
            self.name,
            if self.mem_ops == 0 {
                "scale-independent".to_string()
            } else {
                self.mem_ops.to_string()
            },
            self.name
        ));
        for t in &self.tables {
            if !t.title.is_empty() {
                out.push_str(&format!("\n## {}\n\n", t.title));
            } else {
                out.push('\n');
            }
            out.push_str(&format!("| {} |\n", t.columns.join(" | ")));
            out.push_str(&format!(
                "|{}\n",
                t.columns.iter().map(|_| "---|").collect::<String>()
            ));
            for row in &t.rows {
                let cells: Vec<&str> = row.iter().map(|c| c.text.as_str()).collect();
                out.push_str(&format!("| {} |\n", cells.join(" | ")));
            }
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out
    }

    /// Machine-readable JSON (schema [`EXPERIMENT_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{EXPERIMENT_SCHEMA}\",\n"));
        out.push_str(&format!("  \"experiment\": \"{}\",\n", esc(&self.name)));
        out.push_str(&format!("  \"title\": \"{}\",\n", esc(&self.title)));
        out.push_str(&format!("  \"mem_ops\": {},\n", self.mem_ops));
        out.push_str("  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            out.push_str(&format!(
                "\n    \"{}\": {}{}",
                esc(k),
                fmt_f64(*v),
                if i + 1 == self.metrics.len() {
                    "\n  "
                } else {
                    ","
                }
            ));
        }
        out.push_str("},\n");
        out.push_str("  \"tables\": [");
        for (ti, t) in self.tables.iter().enumerate() {
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"title\": \"{}\",\n", esc(&t.title)));
            let cols: Vec<String> = t
                .columns
                .iter()
                .map(|c| format!("\"{}\"", esc(c)))
                .collect();
            out.push_str(&format!("      \"columns\": [{}],\n", cols.join(", ")));
            out.push_str("      \"rows\": [");
            for (ri, row) in t.rows.iter().enumerate() {
                let cells: Vec<String> = row
                    .iter()
                    .map(|c| match c.num {
                        Some(n) => format!(
                            "{{\"text\": \"{}\", \"num\": {}}}",
                            esc(&c.text),
                            fmt_f64(n)
                        ),
                        None => format!("{{\"text\": \"{}\"}}", esc(&c.text)),
                    })
                    .collect();
                out.push_str(&format!(
                    "\n        [{}]{}",
                    cells.join(", "),
                    if ri + 1 == t.rows.len() {
                        "\n      "
                    } else {
                        ","
                    }
                ));
            }
            out.push_str("]\n");
            out.push_str(if ti + 1 == self.tables.len() {
                "    }\n  "
            } else {
                "    },"
            });
        }
        out.push_str("],\n");
        out.push_str("  \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            out.push_str(&format!(
                "\n    \"{}\"{}",
                esc(n),
                if i + 1 == self.notes.len() {
                    "\n  "
                } else {
                    ","
                }
            ));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Rebuilds a report from a parsed [`Value`] (the inverse of
    /// [`Report::to_json`] — used by `reproduce --render` and the delta
    /// comparison).
    ///
    /// # Errors
    ///
    /// Describes the missing/mistyped field on documents that do not
    /// match [`EXPERIMENT_SCHEMA`].
    pub fn from_json(doc: &Value) -> Result<Report, String> {
        let schema = doc
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema")?;
        if schema != EXPERIMENT_SCHEMA {
            return Err(format!(
                "schema {schema:?} is not {EXPERIMENT_SCHEMA:?} — regenerate the document"
            ));
        }
        let name = doc
            .get("experiment")
            .and_then(Value::as_str)
            .ok_or("missing experiment")?;
        let title = doc
            .get("title")
            .and_then(Value::as_str)
            .ok_or("missing title")?;
        let mem_ops = doc
            .get("mem_ops")
            .and_then(Value::as_f64)
            .ok_or("missing mem_ops")? as u64;
        let mut report = Report::new(name, title, mem_ops);
        match doc.get("metrics") {
            Some(Value::Obj(members)) => {
                for (k, v) in members {
                    let v = v
                        .as_f64()
                        .ok_or_else(|| format!("metric {k} not a number"))?;
                    report.metrics.push((k.clone(), v));
                }
            }
            _ => return Err("missing metrics object".into()),
        }
        for (ti, t) in doc
            .get("tables")
            .and_then(Value::as_array)
            .ok_or("missing tables array")?
            .iter()
            .enumerate()
        {
            let title = t
                .get("title")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("table {ti}: missing title"))?;
            let columns: Vec<String> = t
                .get("columns")
                .and_then(Value::as_array)
                .ok_or_else(|| format!("table {ti}: missing columns"))?
                .iter()
                .map(|c| c.as_str().map(str::to_string))
                .collect::<Option<_>>()
                .ok_or_else(|| format!("table {ti}: non-string column"))?;
            let mut table = Table {
                title: title.to_string(),
                columns,
                rows: Vec::new(),
            };
            for row in t
                .get("rows")
                .and_then(Value::as_array)
                .ok_or_else(|| format!("table {ti}: missing rows"))?
            {
                let cells: Vec<Cell> = row
                    .as_array()
                    .ok_or_else(|| format!("table {ti}: row is not an array"))?
                    .iter()
                    .map(|c| {
                        Ok(Cell {
                            text: c
                                .get("text")
                                .and_then(Value::as_str)
                                .ok_or_else(|| format!("table {ti}: cell without text"))?
                                .to_string(),
                            num: c.get("num").and_then(Value::as_f64),
                        })
                    })
                    .collect::<Result<_, String>>()?;
                table.rows.push(cells);
            }
            report.tables.push(table);
        }
        for n in doc
            .get("notes")
            .and_then(Value::as_array)
            .ok_or("missing notes array")?
        {
            report
                .notes
                .push(n.as_str().ok_or("non-string note")?.to_string());
        }
        Ok(report)
    }
}

/// Formats an f64 as a JSON number (shortest round-trip decimal; the
/// values are pre-rounded by [`sig9`], so no exponent forms appear that
/// a strict reader would reject).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v}");
        // Rust Display uses `e` notation for tiny/huge magnitudes, which
        // is valid JSON; keep as-is.
        s
    }
}

/// Escapes a string for JSON embedding.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Report {
        let mut r = Report::new("fig0", "Figure 0. A \"sample\"", 1234);
        r.metric("avg.overhead", 0.12345678912345);
        r.metric("count", 42.0);
        let mut t = Table::new("main", &["bench", "value", "share"]);
        t.row(vec![
            Cell::text("bsw"),
            Cell::num(1.5, 2),
            Cell::pct(0.5, 1),
        ]);
        t.row(vec![Cell::text("gc"), Cell::int(7), Cell::sci(1.7e-19)]);
        r.tables.push(t);
        r.note("paper: reference");
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let text = r.to_json();
        let doc = json::parse(&text).expect("report JSON parses");
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(EXPERIMENT_SCHEMA)
        );
        let back = Report::from_json(&doc).expect("round-trip");
        assert_eq!(back, r);
        // Re-emission is byte-stable (the --render invariant).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = sample().to_json().replace("toleo-experiment/v1", "x/v9");
        let doc = json::parse(&text).expect("parses");
        assert!(Report::from_json(&doc).unwrap_err().contains("regenerate"));
    }

    #[test]
    fn sig9_rounds_and_preserves() {
        assert_eq!(sig9(0.0), 0.0);
        assert_eq!(sig9(123456789.0), 123456789.0);
        assert_eq!(sig9(0.12345678912345), 0.123456789);
        assert_eq!(sig9(-1.7e-19), -1.7e-19);
    }

    #[test]
    fn renders_are_nonempty_and_aligned() {
        let r = sample();
        let text = r.render_text();
        assert!(text.contains("bsw"));
        assert!(text.starts_with("Figure 0."));
        let md = r.render_markdown();
        assert!(md.contains("| bench | value | share |"));
        assert!(md.contains("| bsw | 1.50 | 50.0% |"));
    }

    #[test]
    fn non_finite_metric_is_recorded_safely() {
        let mut r = Report::new("x", "t", 0);
        r.metric("bad", f64::NAN);
        assert_eq!(r.get_metric("bad"), Some(0.0));
        assert!(r.notes.iter().any(|n| n.contains("non-finite")));
        assert!(json::parse(&r.to_json()).is_ok());
    }
}
