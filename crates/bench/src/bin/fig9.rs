//! Figure 9: average memory read latency, decomposed into DRAM access,
//! decryption (C), integrity (I) and freshness (Toleo) components.

use toleo_bench::harness;
use toleo_sim::config::{Protection, SimConfig};

fn main() {
    println!("Figure 9. Average Memory Read Latency (ns)");
    println!(
        "{:<12}{:>11}{:>9}{:>8}{:>8}{:>8}{:>9}",
        "bench", "config", "dram", "aes", "mac", "fresh", "total"
    );
    for p in Protection::all() {
        for s in harness::run_all(p) {
            println!(
                "{:<12}{:>11}{:>9.0}{:>8.0}{:>8.0}{:>8.0}{:>9.0}",
                s.name,
                p.to_string(),
                s.avg_dram_ns,
                s.avg_aes_ns,
                s.avg_mac_ns,
                s.avg_fresh_ns,
                s.avg_read_latency_ns()
            );
        }
        println!();
    }
    let cfg = SimConfig::scaled(Protection::NoProtect);
    println!(
        "Zero-load DRAM reference: {:.0} ns",
        cfg.dram.zero_load_ns() + cfg.dram.t_rcd_ns
    );
    println!("(paper: AES +18.6%, integrity +36.9%, Toleo <5% except redis/memcached)");
}
