//! End-to-end protection-engine throughput harness.
//!
//! Replays the [`EnginePattern`] workloads (sequential, random, hot-reset)
//! through a functional [`ProtectionEngine`] and reports blocks/second,
//! plus a micro-measurement of the AES-128 block primitive. Results are
//! emitted as `BENCH_2.json` so every future PR can be gated against the
//! recorded trajectory.
//!
//! ```sh
//! cargo run --release -p toleo-bench --bin throughput -- \
//!     --ops 200000 --out BENCH_2.json --check
//! ```
//!
//! `--check` re-reads the emitted file and fails (non-zero exit) unless it
//! is well-formed and carries every required key — the CI bit-rot gate.

use std::time::Instant;
use toleo_core::config::ToleoConfig;
use toleo_core::engine::ProtectionEngine;
use toleo_crypto::aes::Aes128;
use toleo_workloads::pattern::{engine_pattern, EnginePattern};
use toleo_workloads::Op;

/// Engine blocks/sec measured on the seed (pre-T-table, pre-arena)
/// implementation at 200k ops, recorded when this harness was introduced.
/// Keys are `EnginePattern::name()` order: sequential, random, hot-reset.
const SEED_ENGINE_BLOCKS_PER_SEC: [f64; 3] = [606_917.0, 734_070.0, 355_539.0];
/// AES-128 per-block encrypt cost of the seed byte-oriented
/// implementation, measured by this harness's own 8-lane timing loop.
const SEED_AES_ENCRYPT_NS: f64 = 167.0;
/// AES-128 per-block decrypt cost of the seed implementation.
const SEED_AES_DECRYPT_NS: f64 = 318.9;

/// Default memory operations replayed per workload.
const DEFAULT_OPS: u64 = 200_000;
/// Footprint each pattern is confined to (1024 pages).
const FOOTPRINT_BYTES: u64 = 4 << 20;

struct WorkloadResult {
    name: &'static str,
    blocks: u64,
    seconds: f64,
    blocks_per_sec: f64,
    speedup_vs_seed: f64,
}

fn run_workload(pattern: EnginePattern, idx: usize, ops: u64) -> WorkloadResult {
    let mut cfg = ToleoConfig::small();
    if pattern == EnginePattern::HotReset {
        // Make the probabilistic stealth reset fire roughly every 256 hot
        // writes so the page re-encryption slab walk dominates.
        cfg.reset_log2 = 8;
    }
    let trace = engine_pattern(pattern, ops, FOOTPRINT_BYTES, 0xBE2C + idx as u64);
    let mut engine = ProtectionEngine::new(cfg, [0x42u8; 48]);
    let start = Instant::now();
    let mut blocks = 0u64;
    let mut checksum = 0u64;
    for op in &trace.ops {
        match op {
            Op::Write(addr) => {
                let fill = (addr >> 6) as u8 ^ blocks as u8;
                engine.write(*addr, &[fill; 64]).expect("protected write");
                blocks += 1;
            }
            Op::Read(addr) => {
                let block = engine.read(*addr).expect("protected read");
                checksum = checksum.wrapping_add(block[0] as u64);
                blocks += 1;
            }
            Op::Compute(_) => {}
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    std::hint::black_box(checksum);
    let blocks_per_sec = blocks as f64 / seconds;
    WorkloadResult {
        name: pattern.name(),
        blocks,
        seconds,
        blocks_per_sec,
        speedup_vs_seed: blocks_per_sec / SEED_ENGINE_BLOCKS_PER_SEC[idx],
    }
}

/// Micro-measures one AES block operation in ns (median of 5 windows).
/// Eight independent lanes are processed per iteration, mirroring how the
/// engine's XTS mode feeds the cipher independent sectors, so the number
/// reflects achievable throughput rather than serial-chain latency.
fn measure_aes_ns(f: impl Fn(&Aes128, &[u8; 16]) -> [u8; 16]) -> f64 {
    const LANES: usize = 8;
    const ITERS: u32 = 50_000;
    let aes = Aes128::new(b"throughput-key!!");
    let mut lanes = [[0x5au8; 16]; LANES];
    for (i, lane) in lanes.iter_mut().enumerate() {
        lane[0] = i as u8;
    }
    let mut windows: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..ITERS {
                for lane in lanes.iter_mut() {
                    *lane = f(&aes, std::hint::black_box(lane));
                }
            }
            start.elapsed().as_secs_f64() * 1e9 / (ITERS as f64 * LANES as f64)
        })
        .collect();
    std::hint::black_box(lanes);
    windows.sort_by(|a, b| a.total_cmp(b));
    windows[windows.len() / 2]
}

fn emit_json(ops: u64, results: &[WorkloadResult], enc_ns: f64, dec_ns: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"toleo-bench-throughput/v1\",\n");
    out.push_str("  \"pr\": 2,\n");
    out.push_str(&format!("  \"ops_per_workload\": {ops},\n"));
    out.push_str("  \"aes128\": {\n");
    out.push_str(&format!("    \"encrypt_ns_per_block\": {enc_ns:.1},\n"));
    out.push_str(&format!("    \"decrypt_ns_per_block\": {dec_ns:.1},\n"));
    out.push_str(&format!(
        "    \"seed_encrypt_ns_per_block\": {SEED_AES_ENCRYPT_NS:.1},\n"
    ));
    out.push_str(&format!(
        "    \"seed_decrypt_ns_per_block\": {SEED_AES_DECRYPT_NS:.1},\n"
    ));
    out.push_str(&format!(
        "    \"encrypt_speedup_vs_seed\": {:.2},\n",
        SEED_AES_ENCRYPT_NS / enc_ns
    ));
    out.push_str(&format!(
        "    \"decrypt_speedup_vs_seed\": {:.2}\n",
        SEED_AES_DECRYPT_NS / dec_ns
    ));
    out.push_str("  },\n");
    out.push_str("  \"engine\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"workload\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"blocks\": {},\n", r.blocks));
        out.push_str(&format!("      \"seconds\": {:.4},\n", r.seconds));
        out.push_str(&format!(
            "      \"blocks_per_sec\": {:.0},\n",
            r.blocks_per_sec
        ));
        out.push_str(&format!(
            "      \"seed_blocks_per_sec\": {:.0},\n",
            SEED_ENGINE_BLOCKS_PER_SEC[i]
        ));
        out.push_str(&format!(
            "      \"speedup_vs_seed\": {:.2}\n",
            r.speedup_vs_seed
        ));
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Minimal well-formedness check: balanced braces/brackets outside strings
/// and presence of every key the perf-trajectory tooling reads.
fn check_emitted(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut depth = 0i64;
    let mut in_string = false;
    let mut prev = '\0';
    for c in text.chars() {
        if in_string {
            if c == '"' && prev != '\\' {
                in_string = false;
            }
        } else {
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                return Err(format!("{path}: unbalanced braces"));
            }
        }
        prev = c;
    }
    if depth != 0 || in_string {
        return Err(format!("{path}: truncated JSON"));
    }
    for key in [
        "\"schema\"",
        "\"aes128\"",
        "\"encrypt_speedup_vs_seed\"",
        "\"engine\"",
        "\"sequential\"",
        "\"random\"",
        "\"hot-reset\"",
        "\"blocks_per_sec\"",
        "\"speedup_vs_seed\"",
    ] {
        if !text.contains(key) {
            return Err(format!("{path}: missing key {key}"));
        }
    }
    Ok(())
}

fn main() {
    let mut ops = DEFAULT_OPS;
    let mut out_path = String::from("BENCH_2.json");
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ops" => {
                ops = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--ops needs a number");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: throughput [--ops N] [--out PATH] [--check]");
                std::process::exit(2);
            }
        }
    }

    let enc_ns = measure_aes_ns(|aes, b| aes.encrypt_block(b));
    let dec_ns = measure_aes_ns(|aes, b| aes.decrypt_block(b));
    println!(
        "aes128: encrypt {enc_ns:.1} ns/block ({:.2}x vs seed), decrypt {dec_ns:.1} ns/block ({:.2}x vs seed)",
        SEED_AES_ENCRYPT_NS / enc_ns,
        SEED_AES_DECRYPT_NS / dec_ns
    );

    let results: Vec<WorkloadResult> = EnginePattern::all()
        .iter()
        .enumerate()
        .map(|(i, p)| run_workload(*p, i, ops))
        .collect();
    for r in &results {
        println!(
            "engine/{:<10} {:>9} blocks in {:>7.3} s  ->  {:>10.0} blocks/s  ({:.2}x vs seed)",
            r.name, r.blocks, r.seconds, r.blocks_per_sec, r.speedup_vs_seed
        );
    }

    let json = emit_json(ops, &results, enc_ns, dec_ns);
    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("wrote {out_path}");

    if check {
        if let Err(e) = check_emitted(&out_path) {
            eprintln!("BENCH check failed: {e}");
            std::process::exit(1);
        }
        println!("check passed: {out_path} is well-formed");
    }
}
