//! End-to-end protection-scheme throughput harness and perf-regression
//! gate — the paper's head-to-head evaluation arena.
//!
//! All measurement machinery lives in [`toleo_bench::perf`] (so the
//! `reproduce` harness can drive the same experiments); this binary is
//! the CLI that emits the committed `BENCH_*.json` lineage files
//! (schema `toleo-bench-throughput/v5`) and runs the perf gate:
//!
//! ```sh
//! cargo run --release -p toleo-bench --bin throughput -- \
//!     --ops 400000 --out BENCH_7.json --check \
//!     --compare BENCH_6.json --tolerance 0.85
//! ```
//!
//! `--check` re-reads the emitted file and fails (non-zero exit) unless it
//! is well-formed and carries every required key. `--compare` is the CI
//! perf gate: it fails the run if any single-thread workload's blocks/s
//! drops below `tolerance` × the committed baseline's, with the baseline
//! parsed structurally and keyed by workload name
//! ([`toleo_bench::gate`]).

// audit: allow-file(panic, figure binary: abort on setup/serialization failure rather than emit bad data)
// audit: allow-file(secret, speedup_vs_seed compares against the seed-commit perf baseline, not key material)

use toleo_bench::perf::{self, AES_ITERS, DEFAULT_OPS};
use toleo_crypto::backend::default_backend;

fn main() {
    let mut ops = DEFAULT_OPS;
    let mut out_path = String::from("BENCH_7.json");
    let mut check = false;
    let mut compare: Option<String> = None;
    let mut tolerance = 0.85f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ops" => {
                ops = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--ops needs a number");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check = true,
            "--compare" => compare = Some(args.next().expect("--compare needs a baseline path")),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    // Reject NaN/0/negative/super-unity explicitly: any of
                    // them would make every floor comparison false and
                    // silently disable the gate.
                    .filter(|t: &f64| *t > 0.0 && *t <= 1.0)
                    .expect("--tolerance needs a number in (0, 1]");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: throughput [--ops N] [--out PATH] [--check] \
                     [--compare BASELINE.json] [--tolerance F]"
                );
                std::process::exit(2);
            }
        }
    }

    let selected = default_backend();
    let backends = perf::measure_backends(AES_ITERS);
    for b in &backends {
        let marker = if b.kind == selected {
            " [selected]"
        } else {
            ""
        };
        println!(
            "aes128/{:<9} encrypt {:>5.1} ns/block (8-wide {:>4.1}), decrypt {:>5.1} ns/block (8-wide {:>4.1}){marker}",
            b.kind.name(),
            b.encrypt_ns,
            b.encrypt8_ns,
            b.decrypt_ns,
            b.decrypt8_ns,
        );
    }

    let results = perf::run_engine_workloads(ops);
    for r in &results {
        println!(
            "engine/{:<10} {:>9} blocks in {:>7.3} s  ->  {:>10.0} blocks/s  ({:.2}x vs seed; batch {:>10.0}, software {:>10.0})",
            r.name,
            r.blocks,
            r.seconds,
            r.blocks_per_sec,
            r.speedup_vs_seed,
            r.batch_blocks_per_sec,
            r.software_blocks_per_sec,
        );
    }

    let curves = perf::run_scaling_curves(ops);
    for curve in &curves {
        let one_thread = curve
            .points
            .iter()
            .find(|p| p.threads == 1)
            .map_or(1.0, |p| p.blocks_per_sec);
        for p in &curve.points {
            println!(
                "sharded/{:<12} {} thread(s): {:>10.0} blocks/s critical-path ({:.2}x vs 1t), wall {:>10.0} blocks/s",
                curve.workload,
                p.threads,
                p.blocks_per_sec,
                p.blocks_per_sec / one_thread,
                p.wall_blocks_per_sec,
            );
        }
    }

    // The head-to-head arena: every scheme, every pattern, one trait.
    let schemes = perf::run_scheme_sweep(ops);
    for s in &schemes {
        for w in &s.workloads {
            println!(
                "scheme/{:<13} {:<12} {:>10.0} blocks/s single, {:>10.0} batch  \
                 (version fetches {:>8}, re-enc events {:>6})",
                s.scheme,
                w.workload,
                w.blocks_per_sec,
                w.batch_blocks_per_sec,
                w.version_fetches,
                w.reencryption_events,
            );
        }
    }

    // The availability sweep and the quarantine containment experiment.
    let availability = perf::run_availability(ops);
    for a in &availability {
        for p in &a.points {
            println!(
                "avail/{:<12} rate {:<7} {:>10.0} blocks/s (goodput {:>5.3}, faults {:>6}, \
                 retries {:>6}, observations {})",
                a.workload,
                p.fault_rate,
                p.blocks_per_sec,
                p.goodput_vs_fault_free,
                p.faults_injected,
                p.retries,
                if p.observations_match {
                    "match"
                } else {
                    "DIVERGE"
                },
            );
        }
    }
    let quarantine = perf::run_quarantine_experiment(ops);
    println!(
        "quarantine/{:<8} shard {} frozen at op {}; healthy shards {:>10.0} blocks/s \
         ({} served, {} refused, world_killed={})",
        quarantine.workload,
        quarantine.tampered_shard,
        quarantine.tamper_at_op,
        quarantine.healthy_blocks_per_sec,
        quarantine.healthy_blocks,
        quarantine.refused_blocks,
        quarantine.world_killed,
    );

    // The recovery campaign: detection latency, MTTR and healthy-shard
    // goodput through the full quarantine -> scrub -> re-key -> re-admit
    // cycle.
    let recovery = perf::run_recovery_experiment(ops);
    for s in &recovery.best.steps {
        println!(
            "recovery/{:<9} step {} shard {}: detected in {:>3} ops, MTTR {:>6} ops, \
             {} block(s) lost, generation {}",
            recovery.workload,
            s.step,
            s.shard,
            s.detection_latency_ops,
            s.mttr_ops,
            s.blocks_lost,
            s.generation,
        );
    }
    println!(
        "recovery/{:<9} goodput during recovery {:.3}x fault-free (spread {:.3}), \
         {} recoveries, {} blocks still lost",
        recovery.workload,
        recovery.goodput_during_recovery_vs_fault_free,
        recovery.goodput_spread,
        recovery.best.recovery.recoveries,
        recovery.best.recovery.blocks_still_lost,
    );

    let json = perf::emit_json(
        ops,
        &results,
        &curves,
        &backends,
        selected,
        &schemes,
        &availability,
        &quarantine,
        &recovery,
    );
    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("wrote {out_path}");

    if check {
        if let Err(e) = perf::check_emitted(&out_path) {
            eprintln!("BENCH check failed: {e}");
            std::process::exit(1);
        }
        println!("check passed: {out_path} is well-formed");
    }

    if let Some(baseline) = compare {
        match perf::compare_against_baseline(&baseline, tolerance, &results) {
            Ok(()) => println!(
                "perf gate passed: all single-thread workloads within {tolerance} of {baseline}"
            ),
            Err(e) => {
                eprintln!("perf gate FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
