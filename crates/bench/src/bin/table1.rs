//! Table 1: memory-protection guarantee comparison.

use toleo_baselines::schemes::Scheme;

fn main() {
    println!("Table 1. Memory Protection Comparison");
    println!(
        "{:<28}{:>12}{:>13}{:>13}",
        "Protects", "Client SGX", "Scalable SGX", "Toleo"
    );
    let schemes = Scheme::table1();
    type GetCell = fn(&toleo_baselines::Guarantees) -> String;
    let rows: [(&str, GetCell); 4] = [
        ("Full Physical Memory Space", |g| g.full_space.to_string()),
        ("Confidentiality", |g| g.confidentiality.to_string()),
        ("Integrity", |g| g.integrity.to_string()),
        ("Freshness", |g| g.freshness.to_string()),
    ];
    for (label, get) in rows {
        let cells: Vec<String> = schemes.iter().map(|s| get(&s.guarantees())).collect();
        println!(
            "{:<28}{:>12}{:>13}{:>13}",
            label, cells[0], cells[1], cells[2]
        );
    }
}
