//! Table 1: guarantee matrix across protection schemes.
//!
//! Thin wrapper: the implementation lives in
//! `toleo_bench::experiments`, shared with the `reproduce` harness.

fn main() {
    toleo_bench::experiments::cli_main("table1");
}
