//! Ablation studies for the design choices DESIGN.md §6 calls out:
//!
//! 1. probabilistic reset vs naive stored-initial-value reset (storage);
//! 2. Trip's three-format dynamism vs flat-only / full-only;
//! 3. stealth width sweep (security margin vs space);
//! 4. TLB-extension version cache vs Merkle-tree caching (accesses
//!    per miss).

// audit: allow-file(panic, figure binary: abort on setup/serialization failure rather than emit bad data)

use toleo_baselines::tree::CounterTree;
use toleo_bench::harness;
use toleo_core::analysis::StealthAnalysis;
use toleo_core::config::{ToleoConfig, FLAT_ENTRY_BYTES, FULL_ENTRY_BYTES, UNEVEN_ENTRY_BYTES};
use toleo_core::device::ToleoDevice;
use toleo_sim::config::Protection;

fn main() {
    ablation_reset_policy();
    ablation_trip_formats();
    ablation_stealth_width();
    ablation_tree_walks();
    ablation_hot_write_cost();
}

/// 1\. Naive reset needs the initial value stored next to the current
/// value (2x stealth bits); probabilistic reset needs none.
fn ablation_reset_policy() {
    println!("== Ablation 1: reset policy storage cost ==");
    let bits = 27.0;
    let naive_flat = (2.0 * bits + 64.0 + 2.0) / 8.0; // two stealth copies
    let prob_flat = (bits + 64.0 + 2.0) / 8.0;
    println!("flat entry, probabilistic reset : {prob_flat:.1} B/page");
    println!(
        "flat entry, naive stored-initial: {naive_flat:.1} B/page ({:.0}% larger)",
        (naive_flat / prob_flat - 1.0) * 100.0
    );
    let a = StealthAnalysis::default();
    println!(
        "probabilistic residual risk     : {:.1e} (acceptable)\n",
        a.p_exhaustion()
    );
}

/// 2\. Fixed-format alternatives: flat-only cannot represent strided
/// pages (forced resets/re-encryptions), full-only pays 19x space.
fn ablation_trip_formats() {
    println!("== Ablation 2: Trip dynamism vs fixed formats ==");
    let stats = harness::run_all(Protection::Toleo);
    let (mut flat, mut uneven, mut full) = (0u64, 0u64, 0u64);
    for s in &stats {
        flat += s.trip_pages.0;
        uneven += s.trip_pages.1;
        full += s.trip_pages.2;
    }
    let pages = flat + uneven + full;
    let trip_bytes = flat * FLAT_ENTRY_BYTES as u64
        + uneven * (FLAT_ENTRY_BYTES + UNEVEN_ENTRY_BYTES) as u64
        + full * (FLAT_ENTRY_BYTES + FULL_ENTRY_BYTES) as u64;
    let full_only = pages * (FLAT_ENTRY_BYTES + FULL_ENTRY_BYTES) as u64;
    println!("pages: {pages} ({flat} flat / {uneven} uneven / {full} full)");
    println!("Trip (dynamic)   : {:.2} MB", trip_bytes as f64 / 1e6);
    println!(
        "full-only        : {:.2} MB ({:.1}x)",
        full_only as f64 / 1e6,
        full_only as f64 / trip_bytes as f64
    );
    println!(
        "flat-only        : {:.2} MB but {} pages ({:.1}%) need strides it cannot encode,",
        (pages * FLAT_ENTRY_BYTES as u64) as f64 / 1e6,
        uneven + full,
        (uneven + full) as f64 / pages as f64 * 100.0
    );
    println!("                   each forcing a UV bump + full-page re-encryption per write\n");
}

/// 3\. Wider stealth = better replay odds, more space; the 27-bit point
/// balances a 2^-27 guess probability against 12 B flat entries.
fn ablation_stealth_width() {
    println!("== Ablation 3: stealth width sweep ==");
    println!(
        "{:>6}{:>16}{:>18}{:>14}",
        "bits", "P(replay)", "P(exhaustion)", "flat B/page"
    );
    for bits in [20u32, 24, 27, 30, 32] {
        let a = StealthAnalysis {
            stealth_bits: bits,
            ..Default::default()
        };
        let flat_bytes = (bits as f64 + 64.0 + 2.0) / 8.0;
        println!(
            "{bits:>6}{:>16.1e}{:>18.1e}{:>14.1}",
            a.p_replay_success(),
            a.p_exhaustion(),
            flat_bytes
        );
    }
    println!();
}

/// 4\. Merkle walk accesses vs Toleo's single access, as memory grows.
fn ablation_tree_walks() {
    println!("== Ablation 4: Merkle walk cost vs memory size (cold paths) ==");
    println!(
        "{:>12}{:>8}{:>22}",
        "blocks", "levels", "accesses/miss (cold)"
    );
    for log2_blocks in [14u32, 17, 20, 23] {
        let mut tree = CounterTree::new(8, 1 << log2_blocks, 64);
        // Sample cold walks across the space.
        let mut total = 0u32;
        let n = 64u64;
        for i in 0..n {
            let block = (i * ((1u64 << log2_blocks) / n)) % (1 << log2_blocks);
            total += tree.verify(block).unwrap().memory_accesses;
        }
        println!(
            "{:>12}{:>8}{:>22.1}",
            1u64 << log2_blocks,
            tree.depth(),
            total as f64 / n as f64
        );
    }
    println!("Toleo: 1 stealth access per miss at any scale (98% filtered by the cache).");
    // Exercise a device at the paper's design point for reference.
    let dev = ToleoDevice::new(ToleoConfig::small()).expect("valid ToleoConfig");
    println!(
        "(device flat array for this config: {} KB)\n",
        dev.config().flat_array_bytes() / 1024
    );
}

/// 5. Hot-write handling: compressed Merkle leaves (VAULT, MorphCtr) pay
///    group re-encryptions when a small counter overflows; Toleo's uneven
///    format absorbs the same skew with one side-entry allocation.
fn ablation_hot_write_cost() {
    use toleo_baselines::morph::MorphLeaf;
    use toleo_baselines::vault::VaultTree;

    println!("== Ablation 5: hot-write cost (10k writes to one block) ==");
    let mut vault = VaultTree::new(VaultTree::paper_geometry(), 4096);
    let mut vault_reenc = 0u64;
    for _ in 0..10_000 {
        vault_reenc += vault.update(0);
    }
    println!(
        "VAULT     : {} blocks re-encrypted ({} overflow resets)",
        vault_reenc, vault.overflow_resets
    );

    let mut morph = MorphLeaf::new();
    let mut morph_reenc = 0u64;
    for _ in 0..10_000 {
        morph_reenc += morph.update(0);
    }
    println!(
        "MorphCtr  : {} blocks re-encrypted ({} rebases, {} morphs)",
        morph_reenc, morph.rebases, morph.morphs
    );

    let mut cfg = ToleoConfig::small();
    cfg.reset_log2 = 20;
    let mut dev = ToleoDevice::new(cfg).expect("valid ToleoConfig");
    let mut toleo_reenc = 0u64;
    for _ in 0..10_000 {
        if dev.update(0, 0).expect("in range").uv_update() {
            toleo_reenc += 64;
        }
    }
    let s = dev.stats();
    println!("Toleo     : {} blocks re-encrypted ({} probabilistic resets; {} uneven + {} full upgrades)",
        toleo_reenc, s.stealth_resets, s.upgrades_to_uneven, s.upgrades_to_full);
}
