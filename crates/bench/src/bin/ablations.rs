//! Ablation studies: design-choice costs measured head-to-head.
//!
//! Thin wrapper: the implementation lives in
//! `toleo_bench::experiments`, shared with the `reproduce` harness.

fn main() {
    toleo_bench::experiments::cli_main("ablations");
}
