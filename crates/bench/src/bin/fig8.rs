//! Figure 8: off-chip traffic split, bytes per instruction.
//!
//! Thin wrapper: the implementation lives in
//! `toleo_bench::experiments`, shared with the `reproduce` harness.

fn main() {
    toleo_bench::experiments::cli_main("fig8");
}
