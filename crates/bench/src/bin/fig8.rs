//! Figure 8: memory bandwidth overhead — bytes fetched per instruction,
//! split into data / MAC+UV / stealth / dummy traffic.

use toleo_bench::harness;
use toleo_sim::config::Protection;

fn main() {
    println!("Figure 8. Memory bandwidth overhead (bytes per instruction)");
    println!(
        "{:<12}{:>11}{:>9}{:>9}{:>9}{:>9}{:>9}",
        "bench", "config", "data", "MAC+UV", "stealth", "dummy", "total"
    );
    for p in [
        Protection::NoProtect,
        Protection::Ci,
        Protection::Toleo,
        Protection::InvisiMem,
    ] {
        for s in harness::run_all(p) {
            let i = s.instructions.max(1) as f64;
            println!(
                "{:<12}{:>11}{:>9.3}{:>9.3}{:>9.3}{:>9.3}{:>9.3}",
                s.name,
                p.to_string(),
                s.bytes_data as f64 / i,
                s.bytes_mac as f64 / i,
                s.bytes_stealth as f64 / i,
                s.bytes_dummy as f64 / i,
                s.bytes_per_instruction()
            );
        }
        println!();
    }
    println!("(paper: stealth traffic is ~1% of bytes; MAC dominates CI's overhead)");
}
