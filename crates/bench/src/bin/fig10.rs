//! Figure 10: pages classified by their final Trip format.
//!
//! Thin wrapper: the implementation lives in
//! `toleo_bench::experiments`, shared with the `reproduce` harness.

fn main() {
    toleo_bench::experiments::cli_main("fig10");
}
