//! Figure 10: pages classified by their final Trip format.

use toleo_bench::harness;
use toleo_sim::config::Protection;

fn main() {
    let stats = harness::run_all(Protection::Toleo);
    println!("Figure 10. Pages classified by their Trip format (%)");
    println!("{:<12}{:>8}{:>9}{:>8}", "bench", "flat", "uneven", "full");
    let (mut tf, mut tu, mut tfu) = (0u64, 0u64, 0u64);
    for s in &stats {
        let (f, u, fl) = s.trip_pages;
        let total = (f + u + fl).max(1) as f64;
        tf += f;
        tu += u;
        tfu += fl;
        println!(
            "{:<12}{:>7.1}%{:>8.1}%{:>7.2}%",
            s.name,
            f as f64 / total * 100.0,
            u as f64 / total * 100.0,
            fl as f64 / total * 100.0
        );
    }
    let total = (tf + tu + tfu) as f64;
    println!(
        "{:<12}{:>7.1}%{:>8.1}%{:>7.2}%",
        "overall",
        tf as f64 / total * 100.0,
        tu as f64 / total * 100.0,
        tfu as f64 / total * 100.0
    );
    println!("\n(paper: 92% flat, 7.5% uneven, 0.32% full; fmi most uneven at 33%)");
}
