//! One-command artifact reproduction: run every registered experiment,
//! write the `results/` tree, and gate the run against the committed
//! references.
//!
//! ```sh
//! cargo run --release -p toleo-bench --bin reproduce
//! ```
//!
//! produces `results/<name>.{json,md}` for all 18 experiments plus
//! `summary.md`, `delta.md` and `trajectory.md`, compares every
//! functional experiment against its `expected/<name>.json` reference
//! (exact at matching scale, structural otherwise), checks the
//! availability and recovery correctness invariants, and — with `--compare` — holds
//! the wall-clock experiments to tolerance floors against a committed
//! `BENCH_*.json` baseline. Any drift, missing reference, failed
//! invariant or missed floor exits nonzero.
//!
//! Flags:
//!
//! - `--only a,b,c`   run a subset of experiments
//! - `--ops N`        scale override (modeled traces AND wall-clock replay)
//! - `--out DIR`      results tree root (default `results`)
//! - `--expected DIR` reference tree root (default `expected`)
//! - `--update-expected`  rewrite the references from this run
//! - `--compare FILE` gate wall-clock numbers against this baseline
//! - `--tolerance T`  floor ratio for `--compare` (default 0.85)
//! - `--render`       re-splice the generated blocks of EXPERIMENTS.md
//! - `--list`         print the registry and exit

// audit: allow-file(panic, reproduce harness: a reproduction run must abort loudly on bad arguments or unwritable output, never emit a partial results tree silently)

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use toleo_bench::experiments::{self, Experiment, RunCtx};
use toleo_bench::json;
use toleo_bench::report::Report;
use toleo_bench::repro::{
    self, check_availability_invariants, check_perf_floors, check_recovery_invariants,
    compare_reports, DeltaOutcome, DeltaStatus,
};
use toleo_bench::trajectory;

struct Args {
    out: PathBuf,
    expected: PathBuf,
    only: Option<Vec<String>>,
    ops: Option<u64>,
    compare: Option<PathBuf>,
    tolerance: f64,
    update_expected: bool,
    render: bool,
    list: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [--only a,b,c] [--ops N] [--out DIR] [--expected DIR] \
         [--update-expected] [--compare BENCH.json] [--tolerance T] [--render] [--list]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        out: PathBuf::from("results"),
        expected: PathBuf::from("expected"),
        only: None,
        ops: None,
        compare: None,
        tolerance: 0.85,
        update_expected: false,
        render: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match arg.as_str() {
            "--out" => args.out = PathBuf::from(value("--out")),
            "--expected" => args.expected = PathBuf::from(value("--expected")),
            "--only" => {
                args.only = Some(
                    value("--only")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--ops" => {
                args.ops = Some(
                    value("--ops")
                        .parse()
                        .unwrap_or_else(|e| panic!("--ops: {e}")),
                )
            }
            "--compare" => args.compare = Some(PathBuf::from(value("--compare"))),
            "--tolerance" => {
                let t: f64 = value("--tolerance")
                    .parse()
                    .unwrap_or_else(|e| panic!("--tolerance: {e}"));
                assert!(
                    t > 0.0 && t <= 1.0,
                    "--tolerance must be in (0, 1], got {t}"
                );
                args.tolerance = t;
            }
            "--update-expected" => args.update_expected = true,
            "--render" => args.render = true,
            "--list" => args.list = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    args
}

fn select(only: &Option<Vec<String>>) -> Vec<&'static Experiment> {
    let registry = experiments::registry();
    match only {
        None => registry.iter().collect(),
        Some(names) => names
            .iter()
            .map(|n| {
                experiments::find(n).unwrap_or_else(|| {
                    let known: Vec<_> = registry.iter().map(|e| e.name).collect();
                    panic!("unknown experiment {n:?}; known: {known:?}")
                })
            })
            .collect(),
    }
}

fn write(path: &Path, contents: &str) {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .unwrap_or_else(|e| panic!("mkdir {}: {e}", parent.display()));
    }
    std::fs::write(path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

fn load_expected(dir: &Path, name: &str) -> Option<Result<Report, String>> {
    let path = dir.join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path).ok()?;
    Some(
        json::parse(&text)
            .map_err(|e| format!("{}: {e}", path.display()))
            .and_then(|doc| Report::from_json(&doc).map_err(|e| format!("{name}: {e}"))),
    )
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.list {
        for e in experiments::registry() {
            let kind = if e.timing { "timing" } else { "exact" };
            println!("{:<12} {:<28} [{kind}] {}", e.name, e.paper_ref, e.about);
        }
        return ExitCode::SUCCESS;
    }

    let ctx = match args.ops {
        Some(ops) => RunCtx::with_ops(ops as usize, ops),
        None => RunCtx::from_env(),
    };
    let selected = select(&args.only);
    let mut failures: Vec<String> = Vec::new();
    let mut reports: BTreeMap<&'static str, Report> = BTreeMap::new();
    let mut deltas: Vec<DeltaOutcome> = Vec::new();

    // 1. Run everything, write the per-experiment results, diff vs the
    //    committed references.
    for exp in &selected {
        eprintln!("reproduce: running {} ({})", exp.name, exp.paper_ref);
        let report = (exp.run)(&ctx);
        write(
            &args.out.join(format!("{}.json", exp.name)),
            &report.to_json(),
        );
        write(
            &args.out.join(format!("{}.md", exp.name)),
            &report.render_markdown(),
        );
        if args.update_expected && !exp.timing {
            write(
                &args.expected.join(format!("{}.json", exp.name)),
                &report.to_json(),
            );
        }
        let delta = if exp.timing {
            compare_reports(&report, &report, true)
        } else {
            match load_expected(&args.expected, exp.name) {
                None => DeltaOutcome {
                    name: exp.name.to_string(),
                    status: DeltaStatus::MissingExpected,
                    details: vec![format!(
                        "no {}/{}.json — generate with --update-expected",
                        args.expected.display(),
                        exp.name
                    )],
                },
                Some(Err(e)) => DeltaOutcome {
                    name: exp.name.to_string(),
                    status: DeltaStatus::Drift,
                    details: vec![format!("reference unreadable: {e}")],
                },
                Some(Ok(expected)) => compare_reports(&expected, &report, false),
            }
        };
        if delta.status.is_failure() {
            failures.push(format!("{}: {}", delta.name, delta.status.label()));
        }
        deltas.push(delta);
        reports.insert(exp.name, report);
    }

    // 2. Correctness invariants from the availability and recovery runs.
    let mut invariant_lines = Vec::new();
    let mut recovery_invariant_lines = Vec::new();
    {
        // (experiment, checker, rendered-line sink) — both experiments
        // share one invariant-table shape.
        type Checker = fn(&Report) -> Result<Vec<repro::InvariantRow>, String>;
        let suites: [(&str, Checker, &mut Vec<String>); 2] = [
            (
                "availability",
                check_availability_invariants,
                &mut invariant_lines,
            ),
            (
                "recovery",
                check_recovery_invariants,
                &mut recovery_invariant_lines,
            ),
        ];
        for (name, check, lines) in suites {
            let Some(report) = reports.get(name) else {
                continue;
            };
            match check(report) {
                Ok(rows) => {
                    for r in &rows {
                        lines.push(format!(
                            "| `{}` | {} | {} | {} |",
                            r.name,
                            r.required,
                            r.actual,
                            if r.pass { "pass" } else { "**FAIL**" }
                        ));
                        if !r.pass {
                            failures.push(format!(
                                "{name} invariant {} = {} (required {})",
                                r.name, r.actual, r.required
                            ));
                        }
                    }
                }
                Err(e) => failures.push(format!("{name} invariants unreadable: {e}")),
            }
        }
    }

    // 3. Wall-clock tolerance floors against the committed baseline.
    let mut floor_lines = Vec::new();
    if let Some(baseline_path) = &args.compare {
        match reports.get("throughput") {
            None => failures.push("--compare given but throughput was not run".to_string()),
            Some(throughput) => {
                let text = std::fs::read_to_string(baseline_path)
                    .unwrap_or_else(|e| panic!("{}: {e}", baseline_path.display()));
                match check_perf_floors(&text, args.tolerance, throughput) {
                    Err(e) => failures.push(format!("perf floors: {e}")),
                    Ok(rows) => {
                        for r in &rows {
                            floor_lines.push(format!(
                                "| `{}` | {:.0} | {:.0} | {:.2}x | {} | {} |",
                                r.name,
                                r.measured,
                                r.baseline,
                                r.ratio,
                                if r.higher_is_better { "≥" } else { "≤" },
                                if r.pass { "pass" } else { "**FAIL**" }
                            ));
                            if !r.pass {
                                failures.push(format!(
                                    "floor {}: measured {:.0} vs baseline {:.0} (ratio {:.2}, tolerance {})",
                                    r.name, r.measured, r.baseline, r.ratio, args.tolerance
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    // 4. The lineage rendering (BENCH_2 → BENCH_6).
    match trajectory::render_from_dir(Path::new(".")) {
        Ok(section) => write(&args.out.join("trajectory.md"), &section),
        Err(e) => eprintln!("reproduce: trajectory skipped ({e})"),
    }

    // 5. Summary and delta report.
    let mut summary = String::from("# Reproduction summary\n\n");
    summary.push_str(&format!(
        "- experiments run: {} of {}\n- scale: mem_ops={}, perf_ops={}\n\n",
        selected.len(),
        experiments::registry().len(),
        ctx.gen.mem_ops,
        ctx.perf_ops
    ));
    summary.push_str("| experiment | paper ref | status |\n|---|---|---|\n");
    for (exp, delta) in selected.iter().zip(&deltas) {
        summary.push_str(&format!(
            "| [`{}`]({}.md) | {} | {} |\n",
            exp.name,
            exp.name,
            exp.paper_ref,
            delta.status.label()
        ));
    }
    write(&args.out.join("summary.md"), &summary);

    let mut delta_md = String::from("# Delta report\n\n");
    delta_md.push_str(
        "Functional experiments against `expected/` references; wall-clock \
         experiments against tolerance floors.\n\n",
    );
    for d in &deltas {
        delta_md.push_str(&format!("## {} — {}\n\n", d.name, d.status.label()));
        for line in &d.details {
            delta_md.push_str(&format!("- {line}\n"));
        }
        if !d.details.is_empty() {
            delta_md.push('\n');
        }
    }
    if !invariant_lines.is_empty() {
        delta_md.push_str(
            "## Availability invariants\n\n| invariant | required | actual | verdict |\n|---|---|---|---|\n",
        );
        for l in &invariant_lines {
            delta_md.push_str(l);
            delta_md.push('\n');
        }
        delta_md.push('\n');
    }
    if !recovery_invariant_lines.is_empty() {
        delta_md.push_str(
            "## Recovery invariants (required is a minimum for \
             `recoveries.completed` and the goodput ratio)\n\n\
             | invariant | required | actual | verdict |\n|---|---|---|---|\n",
        );
        for l in &recovery_invariant_lines {
            delta_md.push_str(l);
            delta_md.push('\n');
        }
        delta_md.push('\n');
    }
    if !floor_lines.is_empty() {
        delta_md.push_str(&format!(
            "## Wall-clock floors vs `{}` (tolerance {})\n\n\
             | metric | measured | baseline | ratio | dir | verdict |\n|---|---|---|---|---|---|\n",
            args.compare
                .as_ref()
                .map_or(String::new(), |p| p.display().to_string()),
            args.tolerance
        ));
        for l in &floor_lines {
            delta_md.push_str(l);
            delta_md.push('\n');
        }
        delta_md.push('\n');
    }
    write(&args.out.join("delta.md"), &delta_md);

    // 6. --render: re-splice the generated blocks of EXPERIMENTS.md from
    //    the committed references and lineage files.
    if args.render {
        let doc_path = Path::new("EXPERIMENTS.md");
        let doc = std::fs::read_to_string(doc_path)
            .unwrap_or_else(|e| panic!("{}: {e}", doc_path.display()));
        let figures = repro::render_headline(&args.expected)
            .unwrap_or_else(|e| panic!("rendering headline figures: {e}"));
        let lineage = trajectory::render_from_dir(Path::new("."))
            .unwrap_or_else(|e| panic!("rendering trajectory: {e}"));
        let doc = repro::splice_generated(&doc, "figures", &figures)
            .and_then(|d| repro::splice_generated(&d, "trajectory", &lineage))
            .unwrap_or_else(|e| panic!("splicing EXPERIMENTS.md: {e}"));
        write(doc_path, &doc);
        eprintln!("reproduce: EXPERIMENTS.md regenerated");
    }

    // 7. Verdict.
    if failures.is_empty() {
        println!(
            "reproduce: OK — {} experiments, results in {}/",
            selected.len(),
            args.out.display()
        );
        ExitCode::SUCCESS
    } else {
        println!("reproduce: FAILED ({} problems)", failures.len());
        for f in &failures {
            println!("  - {f}");
        }
        println!("see {}/delta.md", args.out.display());
        ExitCode::FAILURE
    }
}
