//! Figure 7: stealth-cache and MAC-cache hit rates under the Toleo
//! configuration.

use toleo_bench::harness::{self, mean};
use toleo_sim::config::Protection;

fn main() {
    let stats = harness::run_all(Protection::Toleo);
    println!("Figure 7. Cache Hit Rates (Toleo configuration)");
    println!("{:<12}{:>15}{:>12}", "bench", "Stealth Cache", "MAC Cache");
    let mut sh = Vec::new();
    let mut mh = Vec::new();
    for s in &stats {
        sh.push(s.stealth_hit_rate);
        mh.push(s.mac_hit_rate);
        println!(
            "{:<12}{:>14.1}%{:>11.1}%",
            s.name,
            s.stealth_hit_rate * 100.0,
            s.mac_hit_rate * 100.0
        );
    }
    println!(
        "{:<12}{:>14.1}%{:>11.1}%",
        "average",
        mean(&sh) * 100.0,
        mean(&mh) * 100.0
    );
    println!("\n(paper: stealth 98% avg — redis 67%, memcached 85% outliers; MAC 67% avg)");
}
