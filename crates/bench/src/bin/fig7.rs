//! Figure 7: stealth-version and MAC cache hit rates.
//!
//! Thin wrapper: the implementation lives in
//! `toleo_bench::experiments`, shared with the `reproduce` harness.

fn main() {
    toleo_bench::experiments::cli_main("fig7");
}
