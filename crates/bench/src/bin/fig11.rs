//! Figure 11: Toleo device memory per TB of protected data.
//!
//! Thin wrapper: the implementation lives in
//! `toleo_bench::experiments`, shared with the `reproduce` harness.

fn main() {
    toleo_bench::experiments::cli_main("fig11");
}
