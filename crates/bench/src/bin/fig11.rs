//! Figure 11: peak Toleo usage per TB of protected data.

use toleo_bench::harness::{self, mean};
use toleo_sim::config::Protection;

fn main() {
    let stats = harness::run_all(Protection::Toleo);
    println!("Figure 11. Peak Toleo Usage (GB per TB of protected data)");
    println!(
        "{:<12}{:>8}{:>9}{:>8}{:>8}",
        "bench", "flat", "uneven", "full", "total"
    );
    let mut totals = Vec::new();
    for s in &stats {
        // bytes/byte -> GB/TB
        let scale = 1000.0 / s.rss_bytes as f64;
        // Paper accounting: the flat array is statically mapped over the
        // whole RSS; uneven/full side entries are dynamic.
        let flat = (s.rss_bytes / 4096 * 12) as f64 * scale;
        let dynamic = s.peak_toleo.dynamic_bytes as f64 * scale;
        let (_, un, fu) = s.trip_pages;
        let uneven_gb =
            dynamic * (un as f64 * 56.0) / (un as f64 * 56.0 + fu as f64 * 224.0).max(1.0);
        let full_gb = dynamic - uneven_gb;
        let total = s.toleo_gb_per_tb();
        totals.push(total);
        println!(
            "{:<12}{:>8.2}{:>9.2}{:>8.2}{:>8.2}",
            s.name, flat, uneven_gb, full_gb, total
        );
    }
    println!("{:<12}{:>33}{:>8.2}", "average", "", mean(&totals));
    println!("\n(paper: 4.27 GB/TB average; fmi worst at 7.6; 168 GB protects ~37 TB)");
}
