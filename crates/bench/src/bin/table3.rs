//! Table 3: simulation configuration dump (paper preset + scaled preset).

use toleo_sim::config::{Protection, SimConfig};

fn print_cfg(label: &str, c: &SimConfig) {
    println!("== {label} ==");
    println!(
        "Processor         {} GHz, {}-wide dispatch",
        c.freq_ghz, c.dispatch_width
    );
    println!(
        "L1-D cache        {} KB, {}-way, {} cycles",
        c.l1.capacity >> 10,
        c.l1.ways,
        c.l1.latency_cycles
    );
    println!(
        "L2 cache          {} KB, {}-way, {} cycles",
        c.l2.capacity >> 10,
        c.l2.ways,
        c.l2.latency_cycles
    );
    println!(
        "L3 cache          {} KB, {}-way, {} cycles",
        c.l3.capacity >> 10,
        c.l3.ways,
        c.l3.latency_cycles
    );
    println!("Local DRAM        DDR4-3200, {} channels", c.dram.channels);
    println!(
        "CXL mem pool      {} GB/s, {} ns (PCIe5 x8 w/ re-timer), DDR4 x{}",
        c.pool_link.bytes_per_ns, c.pool_link.latency_ns, c.pool_dram.channels
    );
    println!(
        "Toleo link        {} GB/s, {} ns (CXL2.0 IDE x2)",
        c.toleo_link.bytes_per_ns, c.toleo_link.latency_ns
    );
    println!("Toleo DRAM        HMC-style, {} ns", c.toleo_dram_ns);
    println!("AES engine        {} cycles", c.aes_cycles);
    println!("MAC cache         {} KB/core, 16-way", c.mac_cache_kib);
    println!("Remote pages      {:.1}%", c.remote_page_fraction * 100.0);
    println!("Stealth caches    L2-TLB ext 256 entries + 28 KB overflow buffer");
    println!();
}

fn main() {
    println!("Table 3. Simulation Configuration");
    print_cfg(
        "paper preset (Table 3)",
        &SimConfig::paper(Protection::Toleo),
    );
    print_cfg(
        "scaled preset (used for figures; caches 1:16)",
        &SimConfig::scaled(Protection::Toleo),
    );
}
