//! Table 3: simulated system configuration (paper and scaled presets).
//!
//! Thin wrapper: the implementation lives in
//! `toleo_bench::experiments`, shared with the `reproduce` harness.

fn main() {
    toleo_bench::experiments::cli_main("table3");
}
