//! Calibration dashboard: measured vs paper targets.
//!
//! Thin wrapper: the implementation lives in
//! `toleo_bench::experiments`, shared with the `reproduce` harness.

fn main() {
    toleo_bench::experiments::cli_main("calibrate");
}
