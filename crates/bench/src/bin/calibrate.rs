//! Calibration dashboard: per-benchmark measured vs paper targets.

// audit: allow-file(panic, figure binary: abort on setup/serialization failure rather than emit bad data)

use toleo_bench::harness;
use toleo_sim::config::Protection;
use toleo_workloads::Benchmark;

fn main() {
    let base = harness::run_all(Protection::NoProtect);
    let ci = harness::run_all(Protection::Ci);
    let toleo = harness::run_all(Protection::Toleo);
    println!(
        "{:<12}{:>7}{:>8}{:>9}{:>8}{:>9}{:>8}{:>8}{:>7}{:>7}{:>7}",
        "bench",
        "mpki",
        "target",
        "st-hit",
        "mac-hit",
        "CI-ovh",
        "T-ovh",
        "T-CI",
        "flat%",
        "unev%",
        "full%"
    );
    for (i, b) in Benchmark::all().iter().enumerate() {
        let (f, u, fl) = toleo[i].trip_pages;
        let tot = (f + u + fl).max(1) as f64;
        // Typed-error overhead math: degenerate (zero-cycle) runs abort
        // with a message instead of printing NaN rows.
        let overhead = |run: &toleo_sim::system::RunStats, base: &toleo_sim::system::RunStats| {
            run.overhead_vs(base)
                .unwrap_or_else(|e| panic!("calibrate {}: {e}", b.name()))
        };
        println!(
            "{:<12}{:>7.2}{:>8.2}{:>8.1}%{:>7.1}%{:>8.1}%{:>7.1}%{:>7.1}%{:>6.1}%{:>6.1}%{:>6.2}%",
            b.name(),
            base[i].llc_mpki,
            b.paper_mpki(),
            toleo[i].stealth_hit_rate * 100.0,
            toleo[i].mac_hit_rate * 100.0,
            overhead(&ci[i], &base[i]) * 100.0,
            overhead(&toleo[i], &base[i]) * 100.0,
            overhead(&toleo[i], &ci[i]) * 100.0,
            f as f64 / tot * 100.0,
            u as f64 / tot * 100.0,
            fl as f64 / tot * 100.0
        );
    }
}
