//! Figure 12: Toleo usage over time, by Trip format (per-benchmark series).

use toleo_bench::harness;
use toleo_sim::config::Protection;

fn main() {
    let stats = harness::run_all(Protection::Toleo);
    println!("Figure 12. Toleo Usage by Trip format w.r.t. Time");
    println!("(series: instructions, flat KB, uneven+full KB, total KB)");
    for s in &stats {
        println!("\n== {} ==", s.name);
        for (instr, u) in &s.usage_timeline {
            println!(
                "{:>12}  flat={:>8.1}KB  dyn={:>8.1}KB  total={:>8.1}KB",
                instr,
                u.flat_bytes as f64 / 1024.0,
                u.dynamic_bytes as f64 / 1024.0,
                u.total_bytes() as f64 / 1024.0
            );
        }
    }
}
