//! Figure 12: Toleo device usage over time.
//!
//! Thin wrapper: the implementation lives in
//! `toleo_bench::experiments`, shared with the `reproduce` harness.

fn main() {
    toleo_bench::experiments::cli_main("fig12");
}
