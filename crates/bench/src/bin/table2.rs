//! Table 2: benchmark working sets — LLC mpki and resident size.
//!
//! Thin wrapper: the implementation lives in
//! `toleo_bench::experiments`, shared with the `reproduce` harness.

fn main() {
    toleo_bench::experiments::cli_main("table2");
}
