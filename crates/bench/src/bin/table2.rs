//! Table 2: benchmark characteristics — measured LLC MPKI and RSS of the
//! synthetic traces, next to the paper's values for the real applications.

use toleo_bench::harness;
use toleo_sim::config::Protection;
use toleo_workloads::Benchmark;

fn main() {
    let stats = harness::run_all(Protection::NoProtect);
    println!("Table 2. Benchmarks (measured on the scaled simulator; paper values for reference)");
    println!(
        "{:<12}{:>14}{:>12}{:>14}{:>12}",
        "bench", "LLC mpki", "RSS (MB)", "paper mpki", "paper RSS"
    );
    for (b, s) in Benchmark::all().iter().zip(&stats) {
        println!(
            "{:<12}{:>14.2}{:>12.1}{:>14.2}{:>10.1}GB",
            s.name,
            s.llc_mpki,
            s.rss_bytes as f64 / (1 << 20) as f64,
            b.paper_mpki(),
            b.paper_rss_gb(),
        );
    }
}
