//! Figure 6: execution-time overhead vs no protection.
//!
//! Thin wrapper: the implementation lives in
//! `toleo_bench::experiments`, shared with the `reproduce` harness.

fn main() {
    toleo_bench::experiments::cli_main("fig6");
}
