//! Figure 6: execution-time overhead of CI, Toleo and InvisiMem relative
//! to no memory protection, per benchmark.

// audit: allow-file(panic, figure binary: abort on setup/serialization failure rather than emit bad data)

use toleo_bench::harness::{self, mean};
use toleo_sim::config::Protection;

fn main() {
    let base = harness::run_all(Protection::NoProtect);
    let ci = harness::run_all(Protection::Ci);
    let toleo = harness::run_all(Protection::Toleo);
    let invisimem = harness::run_all(Protection::InvisiMem);

    println!("Figure 6. CI and Toleo Performance Overhead (% over NoProtect)");
    println!(
        "{:<12}{:>8}{:>8}{:>11}{:>13}",
        "bench", "CI", "Toleo", "InvisiMem", "Toleo-CI"
    );
    let mut ci_all = Vec::new();
    let mut toleo_all = Vec::new();
    let mut inv_all = Vec::new();
    for i in 0..base.len() {
        // overhead_vs reports zero-cycle/empty-trace runs as typed errors
        // instead of letting NaN/inf poison the table averages.
        let overhead = |run: &toleo_sim::system::RunStats| {
            run.overhead_vs(&base[i])
                .unwrap_or_else(|e| panic!("fig6 {}: {e}", base[i].name))
        };
        let c = overhead(&ci[i]);
        let t = overhead(&toleo[i]);
        let v = overhead(&invisimem[i]);
        ci_all.push(c);
        toleo_all.push(t);
        inv_all.push(v);
        println!(
            "{:<12}{:>7.1}%{:>7.1}%{:>10.1}%{:>12.1}%",
            base[i].name,
            c * 100.0,
            t * 100.0,
            v * 100.0,
            (t - c) * 100.0
        );
    }
    println!(
        "{:<12}{:>7.1}%{:>7.1}%{:>10.1}%{:>12.1}%",
        "average",
        mean(&ci_all) * 100.0,
        mean(&toleo_all) * 100.0,
        mean(&inv_all) * 100.0,
        (mean(&toleo_all) - mean(&ci_all)) * 100.0
    );
    println!("\n(paper: CI avg 18%, Toleo adds 1-2% over CI, InvisiMem avg 29%)");
}
