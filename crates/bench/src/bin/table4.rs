//! Table 4: freshness-protected version size comparison. Static rows from
//! the entry layouts; Toleo's average row measured from the 12 workloads'
//! Trip-format mix.

use toleo_baselines::schemes::VersionScheme;
use toleo_bench::harness;
use toleo_sim::config::Protection;

fn main() {
    println!("Table 4. Freshness Protected Version Size Comparison");
    println!(
        "{:<24}{:>14}{:>16}{:>18}",
        "Representation", "Version Size", "Data Protected", "Data:Version"
    );
    for r in VersionScheme::table4_static() {
        println!(
            "{:<24}{:>13}B{:>15}B{:>15.1}:1",
            r.name,
            r.version_bytes,
            r.data_bytes,
            r.ratio()
        );
    }
    // Measured average across the 12 workloads: weight each page's entry
    // size by the final Trip-format mix.
    let stats = harness::run_all(Protection::Toleo);
    let (mut flat, mut uneven, mut full) = (0u64, 0u64, 0u64);
    for s in &stats {
        flat += s.trip_pages.0;
        uneven += s.trip_pages.1;
        full += s.trip_pages.2;
    }
    let pages = (flat + uneven + full) as f64;
    let avg_bytes = (flat as f64 * 12.0 + uneven as f64 * 68.0 + full as f64 * 228.0) / pages;
    let avg = VersionScheme {
        name: "Toleo Stealth Avg. (measured)",
        version_bytes: avg_bytes,
        data_bytes: 4096,
    };
    println!(
        "{:<24}{:>12.2}B{:>15}B{:>15.1}:1",
        avg.name,
        avg.version_bytes,
        avg.data_bytes,
        avg.ratio()
    );
    println!(
        "\n(paper: avg 17.08 B -> 240:1; page mix here: {:.1}% flat, {:.1}% uneven, {:.2}% full)",
        flat as f64 / pages * 100.0,
        uneven as f64 / pages * 100.0,
        full as f64 / pages * 100.0
    );
}
