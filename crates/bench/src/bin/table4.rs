//! Table 4: version storage per scheme, plus the measured Trip mix.
//!
//! Thin wrapper: the implementation lives in
//! `toleo_bench::experiments`, shared with the `reproduce` harness.

fn main() {
    toleo_bench::experiments::cli_main("table4");
}
