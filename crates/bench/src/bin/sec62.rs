//! §6.2 security analysis: closed-form and Monte-Carlo bounds on stealth
//! space exhaustion and replay success.

// audit: allow-file(secret, prints Monte Carlo RNG seeds for reproducibility, not key material)

use toleo_core::analysis::{monte_carlo_resets, StealthAnalysis};

fn main() {
    let a = StealthAnalysis::default();
    println!("Section 6.2: Full Version Is Non-Repeating");
    println!("stealth bits                : {}", a.stealth_bits);
    println!("reset probability           : 2^-{}", a.reset_log2);
    println!(
        "P(no reset in one interval) : {:.2e}  (paper derivation: e^-64 = 1.6e-28)",
        a.p_no_reset_in_interval()
    );
    println!(
        "P(stealth space exhaustion) : {:.2e}  (paper: 1.7e-19)",
        a.p_exhaustion()
    );
    println!(
        "P(single replay success)    : {:.2e}  (2^-27)",
        a.p_replay_success()
    );

    println!("\nMonte-Carlo validation at scaled parameters (space 2^12, reset 2^-5,");
    println!("same headroom ratio as the 2^27 / 2^-20 design point):");
    for seed in [1u64, 2, 3] {
        let mc = monte_carlo_resets(12, 5, 2_000_000, seed);
        println!(
            "  seed {seed}: {} resets / {} updates, longest run {}, exhausted: {}",
            mc.resets, mc.updates, mc.longest_run, mc.exhausted
        );
    }
    println!("\nNegative control (space 2^4, reset 2^-12 — resets too rare):");
    let bad = monte_carlo_resets(4, 12, 100_000, 1);
    println!(
        "  {} resets, longest run {}, exhausted: {} (expected: true)",
        bad.resets, bad.longest_run, bad.exhausted
    );
}
