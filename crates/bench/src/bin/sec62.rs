//! Section 6.2: freshness-guarantee probabilities, closed-form and Monte-Carlo.
//!
//! Thin wrapper: the implementation lives in
//! `toleo_bench::experiments`, shared with the `reproduce` harness.

fn main() {
    toleo_bench::experiments::cli_main("sec62");
}
