//! End-to-end tests of the `reproduce` binary: the results tree is
//! written, a clean run exits zero, and a doctored reference or a
//! doctored perf baseline exits nonzero.

use std::path::{Path, PathBuf};
use std::process::Command;

fn reproduce() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_reproduce"));
    // Run from the repo root so `--compare BENCH_6.json`-style relative
    // paths behave exactly as documented.
    cmd.current_dir(Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."));
    cmd
}

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("toleo-reproduce-tests")
        .join(format!("{test}-{}", std::process::id()));
    // A retry with the same pid must not see a previous run's files.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn clean_run_writes_results_and_exits_zero() {
    let dir = scratch("clean");
    let out = dir.join("results");
    let expected = dir.join("expected");

    // First run bootstraps the references, second run must match them.
    let status = reproduce()
        .args(["--ops", "2000", "--only", "fig10,table2,sec62"])
        .arg("--out")
        .arg(&out)
        .arg("--expected")
        .arg(&expected)
        .arg("--update-expected")
        .status()
        .expect("spawn reproduce");
    assert!(status.success(), "bootstrap run failed");

    let status = reproduce()
        .args(["--ops", "2000", "--only", "fig10,table2,sec62"])
        .arg("--out")
        .arg(&out)
        .arg("--expected")
        .arg(&expected)
        .status()
        .expect("spawn reproduce");
    assert!(status.success(), "verification run failed");

    for stem in ["fig10", "table2", "sec62", "summary", "delta"] {
        for ext in ["json", "md"] {
            let path = out.join(format!("{stem}.{ext}"));
            let wanted = (stem != "summary" && stem != "delta") || ext == "md";
            assert_eq!(path.exists(), wanted, "{}", path.display());
        }
    }
    let delta = std::fs::read_to_string(out.join("delta.md")).expect("delta.md");
    assert_eq!(delta.matches("— match").count(), 3, "{delta}");
}

#[test]
fn doctored_reference_fails_the_run() {
    let dir = scratch("doctored-ref");
    let out = dir.join("results");
    let expected = dir.join("expected");

    let status = reproduce()
        .args(["--ops", "2000", "--only", "fig10"])
        .arg("--out")
        .arg(&out)
        .arg("--expected")
        .arg(&expected)
        .arg("--update-expected")
        .status()
        .expect("spawn reproduce");
    assert!(status.success());

    // Doctor the committed reference: nudge one metric.
    let ref_path = expected.join("fig10.json");
    let text = std::fs::read_to_string(&ref_path).expect("reference");
    let needle = "\"overall.flat_fraction\": ";
    let at = text.find(needle).expect("metric present") + needle.len();
    let doctored = format!(
        "{}0.123456{}",
        &text[..at],
        &text[text[at..].find(',').map(|i| at + i).unwrap()..]
    );
    std::fs::write(&ref_path, doctored).expect("write doctored reference");

    let status = reproduce()
        .args(["--ops", "2000", "--only", "fig10"])
        .arg("--out")
        .arg(&out)
        .arg("--expected")
        .arg(&expected)
        .status()
        .expect("spawn reproduce");
    assert!(
        !status.success(),
        "a doctored reference must fail the reproduction"
    );
    let delta = std::fs::read_to_string(out.join("delta.md")).expect("delta.md");
    assert!(delta.contains("DRIFT"), "{delta}");
    assert!(delta.contains("overall.flat_fraction"), "{delta}");
}

#[test]
fn missing_reference_fails_the_run() {
    let dir = scratch("missing-ref");
    let status = reproduce()
        .args(["--ops", "2000", "--only", "fig10"])
        .arg("--out")
        .arg(dir.join("results"))
        .arg("--expected")
        .arg(dir.join("empty-expected"))
        .status()
        .expect("spawn reproduce");
    assert!(!status.success(), "a missing reference must fail the run");
}

#[test]
fn perf_floor_gate_fails_on_inflated_baseline() {
    let dir = scratch("floors");
    let out = dir.join("results");

    // A baseline no host can match vs one any host clears.
    let impossible = dir.join("impossible.json");
    std::fs::write(
        &impossible,
        r#"{"pr": 99, "engine": [
            {"workload": "sequential", "blocks_per_sec": 1e15},
            {"workload": "random", "blocks_per_sec": 1e15},
            {"workload": "hot-reset", "blocks_per_sec": 1e15}
        ]}"#,
    )
    .expect("write baseline");
    let trivial = dir.join("trivial.json");
    std::fs::write(
        &trivial,
        r#"{"pr": 99, "engine": [
            {"workload": "sequential", "blocks_per_sec": 1.0},
            {"workload": "random", "blocks_per_sec": 1.0},
            {"workload": "hot-reset", "blocks_per_sec": 1.0}
        ]}"#,
    )
    .expect("write baseline");

    let run = |baseline: &Path| {
        reproduce()
            .args(["--ops", "2000", "--only", "throughput"])
            .arg("--out")
            .arg(&out)
            .arg("--compare")
            .arg(baseline)
            .status()
            .expect("spawn reproduce")
    };
    assert!(
        !run(&impossible).success(),
        "an unreachable baseline floor must fail the gate"
    );
    let delta = std::fs::read_to_string(out.join("delta.md")).expect("delta.md");
    assert!(delta.contains("FAIL"), "{delta}");
    assert!(run(&trivial).success(), "a trivial floor must pass");
}

#[test]
fn availability_invariants_are_always_gated() {
    // No --compare needed: the correctness invariants (zero false kills,
    // matching observations, single-shard quarantine) gate every run
    // that includes the availability experiment.
    let dir = scratch("invariants");
    let out = dir.join("results");
    let status = reproduce()
        .args(["--ops", "2000", "--only", "availability"])
        .arg("--out")
        .arg(&out)
        .status()
        .expect("spawn reproduce");
    assert!(status.success());
    let delta = std::fs::read_to_string(out.join("delta.md")).expect("delta.md");
    assert!(delta.contains("Availability invariants"), "{delta}");
    assert_eq!(delta.matches("| pass |").count(), 4, "{delta}");
}

#[test]
fn list_names_every_registered_experiment() {
    let output = reproduce().arg("--list").output().expect("spawn reproduce");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    for name in [
        "table1",
        "table4",
        "fig6",
        "fig12",
        "sec62",
        "ablations",
        "calibrate",
        "sim-summary",
        "throughput",
        "availability",
    ] {
        assert!(stdout.contains(name), "--list lacks {name}:\n{stdout}");
    }
}
