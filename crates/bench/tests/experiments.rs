//! Registry-wide schema tests: every experiment's JSON output parses
//! under the workspace JSON reader, declares the current schema version,
//! and round-trips; the generated blocks of `EXPERIMENTS.md` match the
//! committed references byte-for-byte.

use std::path::Path;

use toleo_bench::experiments::{self, RunCtx};
use toleo_bench::json;
use toleo_bench::report::{Report, EXPERIMENT_SCHEMA};
use toleo_bench::{repro, trajectory};

/// Every registered experiment: JSON parses, schema matches, round-trip
/// is lossless, and both renderers produce non-trivial output.
#[test]
fn every_experiment_emits_schema_conformant_json() {
    let ctx = RunCtx::with_ops(2_000, 2_000);
    for exp in experiments::registry() {
        let report = (exp.run)(&ctx);
        assert_eq!(report.name, exp.name, "report name mismatch");

        let text = report.to_json();
        let doc = json::parse(&text).unwrap_or_else(|e| panic!("{}: JSON invalid: {e}", exp.name));
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(EXPERIMENT_SCHEMA),
            "{}: wrong schema tag",
            exp.name
        );

        let parsed =
            Report::from_json(&doc).unwrap_or_else(|e| panic!("{}: round-trip: {e}", exp.name));
        assert_eq!(parsed.name, report.name);
        assert_eq!(parsed.tables.len(), report.tables.len(), "{}", exp.name);
        assert_eq!(parsed.metrics.len(), report.metrics.len(), "{}", exp.name);
        // Re-serializing the parsed form is byte-stable — what the
        // expected/ comparison relies on.
        assert_eq!(parsed.to_json(), text, "{}: not byte-stable", exp.name);

        assert!(
            !report.render_markdown().trim().is_empty(),
            "{}: empty markdown",
            exp.name
        );
        assert!(
            report.render_text().contains(&report.title),
            "{}: text render lacks title",
            exp.name
        );
    }
}

/// Functional experiments are deterministic at fixed scale: two fresh
/// contexts produce byte-identical JSON (timing experiments excluded —
/// they measure wall clock).
#[test]
fn functional_experiments_are_deterministic() {
    for exp in experiments::registry().iter().filter(|e| !e.timing) {
        let a = (exp.run)(&RunCtx::with_ops(1_000, 1_000)).to_json();
        let b = (exp.run)(&RunCtx::with_ops(1_000, 1_000)).to_json();
        assert_eq!(a, b, "{}: not deterministic", exp.name);
    }
}

/// The committed `expected/` references parse, declare the schema, and
/// cover exactly the functional experiments.
#[test]
fn committed_references_cover_the_functional_registry() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let expected = root.join("expected");
    for exp in experiments::registry() {
        let path = expected.join(format!("{}.json", exp.name));
        if exp.timing {
            assert!(
                !path.exists(),
                "{}: timing experiments must not have exact references",
                exp.name
            );
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: missing reference: {e}", path.display()));
        let doc = json::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", exp.name));
        let report = Report::from_json(&doc).unwrap_or_else(|e| panic!("{}: {e}", exp.name));
        assert_eq!(report.name, exp.name);
    }
}

/// `EXPERIMENTS.md`'s generated blocks equal a fresh rendering from the
/// committed references and lineage files — the tables in the doc
/// cannot be hand-edited or go stale.
#[test]
fn experiments_md_generated_blocks_are_current() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let doc = std::fs::read_to_string(root.join("EXPERIMENTS.md")).expect("EXPERIMENTS.md");

    let figures = repro::render_headline(&root.join("expected")).expect("headline renders");
    let figures_block = repro::generated_block("figures", &figures);
    assert!(
        doc.contains(&figures_block),
        "EXPERIMENTS.md figures block is stale — run `reproduce --render` and commit"
    );

    let lineage = trajectory::render_from_dir(&root).expect("lineage renders");
    let trajectory_block = repro::generated_block("trajectory", &lineage);
    assert!(
        doc.contains(&trajectory_block),
        "EXPERIMENTS.md trajectory block is stale — run `reproduce --render` and commit"
    );
}
