//! Timed data-cache hierarchy with dirty-writeback tracking.
//!
//! Unlike the metadata directories in `toleo-core::cache`, these caches
//! track dirty state so LLC evictions generate the protected writebacks
//! that drive version UPDATE traffic.

// audit: allow-file(panic, simulator invariants: a panic aborts the offline run with a trace, no production path)

use crate::config::CacheConfig;

/// One cache way entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the block was resident.
    pub hit: bool,
    /// Block address of a dirty line evicted by the fill, if any.
    pub writeback: Option<u64>,
}

/// A set-associative, write-back, write-allocate data cache (LRU).
#[derive(Debug, Clone)]
pub struct DataCache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    hits: u64,
    misses: u64,
}

impl DataCache {
    /// Builds a cache from its geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        DataCache {
            sets: vec![Vec::with_capacity(cfg.ways); cfg.sets()],
            ways: cfg.ways,
            hits: 0,
            misses: 0,
        }
    }

    fn index(&self, block: u64) -> usize {
        (block % self.sets.len() as u64) as usize
    }

    /// Accesses the 64-byte block containing `addr`; fills on miss. `write`
    /// marks the line dirty. Returns hit/miss and any dirty victim.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessResult {
        let block = addr / 64;
        let idx = self.index(block);
        let ways = self.ways;
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|l| l.tag == block) {
            let mut line = set.remove(pos);
            line.dirty |= write;
            set.insert(0, line);
            self.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
            };
        }
        self.misses += 1;
        set.insert(
            0,
            Line {
                tag: block,
                dirty: write,
            },
        );
        let mut writeback = None;
        if set.len() > ways {
            let victim = set.pop().expect("overfull set");
            if victim.dirty {
                writeback = Some(victim.tag * 64);
            }
        }
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Flushes every dirty line, returning their block addresses (used at
    /// end of simulation so pending writebacks reach the version system).
    pub fn drain_dirty(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for line in set.iter_mut() {
                if line.dirty {
                    out.push(line.tag * 64);
                    line.dirty = false;
                }
            }
        }
        out
    }
}

/// Three-level hierarchy; misses at each level descend to the next, and a
/// fill at any level can push a dirty victim down (L1/L2 victims are folded
/// into the next level; L3 victims surface as memory writebacks).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// L1 data cache.
    pub l1: DataCache,
    /// Private L2.
    pub l2: DataCache,
    /// Shared L3 (LLC).
    pub l3: DataCache,
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Hit in L1.
    L1,
    /// Hit in L2.
    L2,
    /// Hit in L3.
    L3,
    /// Missed all levels; goes to memory.
    Memory,
}

/// Outcome of a hierarchy access: where it hit plus any LLC writebacks the
/// access generated (protected writes).
#[derive(Debug, Clone)]
pub struct HierarchyResult {
    /// Level that satisfied the access.
    pub level: HitLevel,
    /// Dirty blocks evicted from the LLC by fills along the way.
    pub llc_writebacks: Vec<u64>,
}

impl Hierarchy {
    /// Builds the hierarchy from the node config.
    pub fn new(cfg: &crate::config::SimConfig) -> Self {
        Hierarchy {
            l1: DataCache::new(cfg.l1),
            l2: DataCache::new(cfg.l2),
            l3: DataCache::new(cfg.l3),
        }
    }

    /// Performs a load (`write = false`) or store (`write = true`).
    pub fn access(&mut self, addr: u64, write: bool) -> HierarchyResult {
        let mut llc_writebacks = Vec::new();
        let r1 = self.l1.access(addr, write);
        if let Some(wb) = r1.writeback {
            // L1 victim folds into L2 as a dirty fill.
            let r2 = self.l2.access(wb, true);
            if let Some(wb2) = r2.writeback {
                let r3 = self.l3.access(wb2, true);
                if let Some(wb3) = r3.writeback {
                    llc_writebacks.push(wb3);
                }
            }
        }
        if r1.hit {
            return HierarchyResult {
                level: HitLevel::L1,
                llc_writebacks,
            };
        }
        let r2 = self.l2.access(addr, false);
        if let Some(wb2) = r2.writeback {
            let r3 = self.l3.access(wb2, true);
            if let Some(wb3) = r3.writeback {
                llc_writebacks.push(wb3);
            }
        }
        if r2.hit {
            return HierarchyResult {
                level: HitLevel::L2,
                llc_writebacks,
            };
        }
        let r3 = self.l3.access(addr, false);
        if let Some(wb3) = r3.writeback {
            llc_writebacks.push(wb3);
        }
        let level = if r3.hit {
            HitLevel::L3
        } else {
            HitLevel::Memory
        };
        HierarchyResult {
            level,
            llc_writebacks,
        }
    }

    /// LLC misses so far (the Table 2 MPKI numerator).
    pub fn llc_misses(&self) -> u64 {
        self.l3.misses()
    }

    /// Drains all dirty lines down to memory writebacks.
    pub fn drain(&mut self) -> Vec<u64> {
        let mut wbs = Vec::new();
        for blk in self.l1.drain_dirty() {
            let r = self.l2.access(blk, true);
            if let Some(w) = r.writeback {
                let r3 = self.l3.access(w, true);
                if let Some(w3) = r3.writeback {
                    wbs.push(w3);
                }
            }
        }
        for blk in self.l2.drain_dirty() {
            let r3 = self.l3.access(blk, true);
            if let Some(w3) = r3.writeback {
                wbs.push(w3);
            }
        }
        wbs.extend(self.l3.drain_dirty());
        wbs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Protection, SimConfig};

    fn tiny_cache(blocks: usize, ways: usize) -> DataCache {
        DataCache::new(CacheConfig {
            capacity: blocks * 64,
            ways,
            latency_cycles: 1,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny_cache(16, 4);
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x13f, false).hit, "same block, different byte");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn dirty_eviction_surfaces_writeback() {
        let mut c = tiny_cache(4, 4); // one set... no: 4 blocks 4 ways = 1 set
        c.access(0, true); // dirty
        c.access(64, false);
        c.access(64 * 2, false);
        c.access(64 * 3, false);
        let r = c.access(64 * 4, false); // evicts block 0 (LRU, dirty)
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny_cache(4, 4);
        for i in 0..5u64 {
            let r = c.access(i * 64, false);
            assert_eq!(r.writeback, None);
        }
    }

    #[test]
    fn drain_dirty_returns_all() {
        let mut c = tiny_cache(16, 4);
        c.access(0, true);
        c.access(64, true);
        c.access(128, false);
        let mut d = c.drain_dirty();
        d.sort();
        assert_eq!(d, vec![0, 64]);
        assert!(c.drain_dirty().is_empty(), "drain clears dirty bits");
    }

    #[test]
    fn hierarchy_levels() {
        let cfg = SimConfig::scaled(Protection::NoProtect);
        let mut h = Hierarchy::new(&cfg);
        assert_eq!(h.access(0x1000, false).level, HitLevel::Memory);
        assert_eq!(h.access(0x1000, false).level, HitLevel::L1);
        // Blow L1 (8 KB = 128 blocks) with conflicting lines, keep within L2.
        for i in 1..200u64 {
            h.access(0x1000 + i * 4096, false); // same L1 set pressure
        }
        let lvl = h.access(0x1000, false).level;
        assert!(
            lvl == HitLevel::L2 || lvl == HitLevel::L3,
            "demoted to {lvl:?}"
        );
    }

    #[test]
    fn hierarchy_generates_llc_writebacks_under_dirty_pressure() {
        let cfg = SimConfig::scaled(Protection::NoProtect);
        let mut h = Hierarchy::new(&cfg);
        let mut wbs = 0;
        // Write a region much larger than the 1 MB LLC.
        for i in 0..(4 << 20) / 64u64 {
            wbs += h.access(i * 64, true).llc_writebacks.len();
        }
        assert!(wbs > 0, "dirty working set beyond LLC must write back");
    }

    #[test]
    fn hierarchy_drain_flushes_everything() {
        let cfg = SimConfig::scaled(Protection::NoProtect);
        let mut h = Hierarchy::new(&cfg);
        h.access(0x40, true);
        let wbs = h.drain();
        assert!(wbs.contains(&0x40));
    }
}
