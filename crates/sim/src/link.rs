//! Serial-link model for CXL connections (memory pool and Toleo).
//!
//! A link is a bandwidth server with a fixed propagation latency: a
//! transfer serializes behind earlier traffic, then takes `bytes / BW`
//! on the wire plus the one-way latency. IDE's skid mode means security
//! processing adds no wire time (checks run in parallel; §4.1), so the
//! IDE link uses the same model with its narrower bandwidth.

use crate::config::LinkConfig;

/// Cumulative link counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkStats {
    /// Transfers made.
    pub transfers: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Total queueing delay experienced (ns).
    pub queue_ns: f64,
}

/// A serial link.
#[derive(Debug, Clone)]
pub struct Link {
    cfg: LinkConfig,
    next_free_ns: f64,
    stats: LinkStats,
}

impl Link {
    /// Creates a link.
    pub fn new(cfg: LinkConfig) -> Self {
        Link {
            cfg,
            next_free_ns: 0.0,
            stats: LinkStats::default(),
        }
    }

    /// Transfers `bytes` starting no earlier than `now_ns`; returns arrival
    /// time at the far end.
    pub fn transfer(&mut self, now_ns: f64, bytes: u64) -> f64 {
        let start = now_ns.max(self.next_free_ns);
        let ser = bytes as f64 / self.cfg.bytes_per_ns;
        self.next_free_ns = start + ser;
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        self.stats.queue_ns += start - now_ns;
        start + ser + self.cfg.latency_ns
    }

    /// A full round trip: request of `req_bytes` out, response of
    /// `resp_bytes` back (the return path shares the same serial resource
    /// in this half-duplex-ish approximation).
    pub fn round_trip(&mut self, now_ns: f64, req_bytes: u64, resp_bytes: u64) -> f64 {
        let arrived = self.transfer(now_ns, req_bytes);
        self.transfer(arrived, resp_bytes)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Configured one-way latency.
    pub fn latency_ns(&self) -> f64 {
        self.cfg.latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(LinkConfig {
            latency_ns: 95.0,
            bytes_per_ns: 12.7,
        })
    }

    #[test]
    fn single_transfer_latency() {
        let mut l = link();
        let done = l.transfer(0.0, 64);
        assert!((done - (95.0 + 64.0 / 12.7)).abs() < 0.01);
    }

    #[test]
    fn transfers_serialize() {
        let mut l = link();
        let a = l.transfer(0.0, 6400);
        let b = l.transfer(0.0, 64);
        assert!(b > a - 95.0, "second transfer queues behind first");
        assert!(l.stats().queue_ns > 0.0);
    }

    #[test]
    fn round_trip_includes_both_directions() {
        let mut l = link();
        let done = l.round_trip(0.0, 16, 64);
        assert!(done > 2.0 * 95.0, "two propagation delays");
    }

    #[test]
    fn stats_count_bytes() {
        let mut l = link();
        l.transfer(0.0, 100);
        l.transfer(0.0, 28);
        let s = l.stats();
        assert_eq!(s.transfers, 2);
        assert_eq!(s.bytes, 128);
    }
}
