//! Simulation configuration (paper Table 3).
//!
//! Two presets are provided: [`SimConfig::paper`] mirrors Table 3's 32-core
//! node, and [`SimConfig::scaled`] shrinks caches in proportion to the
//! workload generators' 1000x-smaller working sets so miss behaviour — and
//! therefore the *shape* of every figure — is preserved while simulations
//! complete in seconds.

use serde::{Deserialize, Serialize};

/// Which memory-protection configuration a run models (§7, four setups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protection {
    /// No memory protection (baseline).
    NoProtect,
    /// Confidentiality only: AES-XTS (Intel TME-like).
    C,
    /// Confidentiality + integrity: AES-XTS + MACs (scalable SGX + I).
    Ci,
    /// Confidentiality + integrity + freshness via the Toleo device.
    Toleo,
    /// InvisiMem-far: all-smart-memory with address/timing-channel
    /// defenses (double encryption, size-padded packets, dummy traffic).
    InvisiMem,
}

impl Protection {
    /// All configurations, in the paper's comparison order.
    pub fn all() -> [Protection; 5] {
        [
            Protection::NoProtect,
            Protection::C,
            Protection::Ci,
            Protection::Toleo,
            Protection::InvisiMem,
        ]
    }
}

impl std::fmt::Display for Protection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Protection::NoProtect => "NoProtect",
            Protection::C => "C",
            Protection::Ci => "CI",
            Protection::Toleo => "Toleo",
            Protection::InvisiMem => "InvisiMem",
        };
        f.write_str(s)
    }
}

/// Cache geometry + latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity.
    pub ways: usize,
    /// Access latency in cycles.
    pub latency_cycles: u32,
}

impl CacheConfig {
    /// Number of 64-byte blocks.
    pub fn blocks(&self) -> usize {
        self.capacity / 64
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.blocks() / self.ways).max(1)
    }
}

/// DRAM timing (DDR4-3200-like).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Independent channels.
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Column access (row hit) latency, ns.
    pub t_cas_ns: f64,
    /// Row activate latency, ns.
    pub t_rcd_ns: f64,
    /// Precharge latency, ns.
    pub t_rp_ns: f64,
    /// Fixed controller + on-chip interconnect overhead, ns.
    pub ctrl_ns: f64,
    /// Peak bandwidth per channel, bytes per ns (DDR4-3200: 25.6 GB/s).
    pub bytes_per_ns_per_channel: f64,
}

impl DramConfig {
    /// DDR4-3200 with the given channel count.
    pub fn ddr4_3200(channels: usize) -> Self {
        DramConfig {
            channels,
            banks_per_channel: 16,
            row_bytes: 8192,
            t_cas_ns: 13.75,
            t_rcd_ns: 13.75,
            t_rp_ns: 13.75,
            ctrl_ns: 25.0,
            bytes_per_ns_per_channel: 25.6,
        }
    }

    /// Zero-load row-hit read latency in ns.
    pub fn zero_load_ns(&self) -> f64 {
        self.ctrl_ns + self.t_cas_ns + 64.0 / self.bytes_per_ns_per_channel
    }
}

/// CXL link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// One-way added latency, ns (paper: 95 ns with a re-timer).
    pub latency_ns: f64,
    /// Usable bandwidth, bytes per ns.
    pub bytes_per_ns: f64,
}

/// Full node configuration (Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Core clock in GHz (2.25).
    pub freq_ghz: f64,
    /// Dispatch width (6).
    pub dispatch_width: u32,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// Shared L3 (per node in this model).
    pub l3: CacheConfig,
    /// Local DDR4.
    pub dram: DramConfig,
    /// Remote CXL memory-pool DRAM.
    pub pool_dram: DramConfig,
    /// CXL 2.0 x8 link to the memory pool (12.7 GB/s, 95 ns).
    pub pool_link: LinkConfig,
    /// CXL 2.0 IDE x2 link to Toleo (3.32 GB/s, 95 ns).
    pub toleo_link: LinkConfig,
    /// Toleo-internal HMC access latency, ns (Table 3: 15 ns).
    pub toleo_dram_ns: f64,
    /// AES engine latency in cycles (Table 3: 40).
    pub aes_cycles: u32,
    /// Fraction of pages mapped to the remote pool (bandwidth-proportional:
    /// 12.7 / (3*25.6 + 12.7) ≈ 0.142).
    pub remote_page_fraction: f64,
    /// MAC cache size in KiB (Table 3: 32 KB per core; one core modelled).
    pub mac_cache_kib: usize,
    /// Protection configuration.
    pub protection: Protection,
}

impl SimConfig {
    /// Table 3 configuration (one core of the 32-core node).
    pub fn paper(protection: Protection) -> Self {
        SimConfig {
            freq_ghz: 2.25,
            dispatch_width: 6,
            l1: CacheConfig {
                capacity: 32 << 10,
                ways: 8,
                latency_cycles: 4,
            },
            l2: CacheConfig {
                capacity: 1 << 20,
                ways: 16,
                latency_cycles: 14,
            },
            l3: CacheConfig {
                capacity: 16 << 20,
                ways: 16,
                latency_cycles: 49,
            },
            dram: DramConfig::ddr4_3200(3),
            pool_dram: DramConfig::ddr4_3200(2),
            pool_link: LinkConfig {
                latency_ns: 95.0,
                bytes_per_ns: 12.7,
            },
            toleo_link: LinkConfig {
                latency_ns: 95.0,
                bytes_per_ns: 3.32,
            },
            toleo_dram_ns: 15.0,
            aes_cycles: 40,
            remote_page_fraction: 12.7 / (3.0 * 25.6 + 12.7),
            mac_cache_kib: 32,
            protection,
        }
    }

    /// Cache capacities scaled 1:16 to match the workload generators'
    /// down-scaled working sets (LLC 1 MB vs ~7–26 MB RSS, preserving the
    /// paper's LLC-much-smaller-than-RSS regime).
    pub fn scaled(protection: Protection) -> Self {
        let mut cfg = Self::paper(protection);
        cfg.l1.capacity = 8 << 10;
        cfg.l2.capacity = 64 << 10;
        cfg.l3.capacity = 1 << 20;
        cfg
    }

    /// Nanoseconds for `cycles` core cycles.
    pub fn cycles_to_ns(&self, cycles: u32) -> f64 {
        cycles as f64 / self.freq_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table3() {
        let c = SimConfig::paper(Protection::Toleo);
        assert_eq!(c.dispatch_width, 6);
        assert_eq!(c.l1.capacity, 32 << 10);
        assert_eq!(c.l2.latency_cycles, 14);
        assert_eq!(c.l3.latency_cycles, 49);
        assert_eq!(c.dram.channels, 3);
        assert_eq!(c.aes_cycles, 40);
        assert!((c.pool_link.bytes_per_ns - 12.7).abs() < 1e-9);
        assert!((c.toleo_link.bytes_per_ns - 3.32).abs() < 1e-9);
        assert!((c.remote_page_fraction - 0.1417).abs() < 0.01);
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig {
            capacity: 32 << 10,
            ways: 8,
            latency_cycles: 4,
        };
        assert_eq!(c.blocks(), 512);
        assert_eq!(c.sets(), 64);
    }

    #[test]
    fn zero_load_latency_sane() {
        let d = DramConfig::ddr4_3200(3);
        let z = d.zero_load_ns();
        assert!(z > 30.0 && z < 60.0, "zero-load {z} ns");
    }

    #[test]
    fn cycles_to_ns() {
        let c = SimConfig::paper(Protection::NoProtect);
        assert!((c.cycles_to_ns(45) - 20.0).abs() < 0.1); // 45 cyc @2.25GHz
    }

    #[test]
    fn scaled_preserves_timings() {
        let p = SimConfig::paper(Protection::Ci);
        let s = SimConfig::scaled(Protection::Ci);
        assert_eq!(p.l3.latency_cycles, s.l3.latency_cycles);
        assert!(s.l3.capacity < p.l3.capacity);
    }
}
