//! # toleo-sim
//!
//! Cycle-level timing simulator substrate for the Toleo reproduction — the
//! stand-in for the paper's SniperSim + DRAMSim3 stack (see DESIGN.md §2).
//!
//! * [`config`] — Table 3 machine configuration and the five protection
//!   setups (NoProtect / C / CI / Toleo / InvisiMem).
//! * [`cache`] — write-back, write-allocate three-level hierarchy whose
//!   dirty LLC evictions drive version UPDATE traffic.
//! * [`dram`] — DDR4 bank/row-buffer/bus timing.
//! * [`link`] — CXL serial links (memory pool x8, Toleo IDE x2).
//! * [`system`] — node and rack models with per-protection read/write
//!   paths and the statistics every figure consumes.
//!
//! ```
//! use toleo_sim::config::{Protection, SimConfig};
//! use toleo_sim::system::System;
//! use toleo_workloads::{generate, Benchmark, GenConfig};
//!
//! let trace = generate(Benchmark::Llama2Gen, &GenConfig::tiny());
//! let base = System::new(SimConfig::scaled(Protection::NoProtect)).run(&trace);
//! let toleo = System::new(SimConfig::scaled(Protection::Toleo)).run(&trace);
//! // overhead_vs guards the ratio against zero-cycle/empty-trace runs
//! // (a bare `toleo.cycles / base.cycles - 1.0` silently yields NaN/inf).
//! let overhead = toleo.overhead_vs(&base)?;
//! println!("llama2-gen freshness overhead: {:.1}%", overhead * 100.0);
//! # Ok::<(), toleo_sim::system::OverheadError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod dram;
pub mod link;
pub mod system;

pub use config::{Protection, SimConfig};
pub use system::{OverheadError, Rack, RunStats, System};
