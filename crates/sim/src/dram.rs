//! DDR4 bank/row-buffer timing model (the DRAMSim3 substitute).
//!
//! Each channel has independent banks with open-row state and a
//! next-free time; the data bus of each channel is a serial resource.
//! An access's latency is queueing (bank + bus) plus the row-buffer
//! outcome (hit / closed / conflict) plus burst transfer, plus a fixed
//! controller overhead.

use crate::config::DramConfig;

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    next_free_ns: f64,
}

/// Byte counters by traffic class (feeds Fig. 8).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DramStats {
    /// Read + write transactions served.
    pub accesses: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Sum of read latencies (ns) for average computation.
    pub total_read_latency_ns: f64,
    /// Number of reads.
    pub reads: u64,
}

/// A DDR channel group.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    bus_next_free_ns: Vec<f64>,
    stats: DramStats,
    /// Extra service-time multiplier (InvisiMem's dummy-packet pressure
    /// models as reduced effective bandwidth).
    pub service_multiplier: f64,
}

impl Dram {
    /// Creates the DRAM model.
    pub fn new(cfg: DramConfig) -> Self {
        Dram {
            banks: vec![Bank::default(); cfg.channels * cfg.banks_per_channel],
            bus_next_free_ns: vec![0.0; cfg.channels],
            cfg,
            stats: DramStats::default(),
            service_multiplier: 1.0,
        }
    }

    fn map(&self, addr: u64) -> (usize, usize, u64) {
        let block = addr / 64;
        let channel = (block % self.cfg.channels as u64) as usize;
        let row_id = addr / self.cfg.row_bytes;
        let bank_in_ch = (row_id % self.cfg.banks_per_channel as u64) as usize;
        let row = row_id / self.cfg.banks_per_channel as u64;
        (
            channel,
            channel * self.cfg.banks_per_channel + bank_in_ch,
            row,
        )
    }

    /// Performs one 64-byte access starting no earlier than `now_ns`;
    /// returns the completion time in ns.
    pub fn access(&mut self, now_ns: f64, addr: u64, is_read: bool) -> f64 {
        let (channel, bank_idx, row) = self.map(addr);
        let burst = 64.0 / self.cfg.bytes_per_ns_per_channel * self.service_multiplier;
        let bank = &mut self.banks[bank_idx];
        let start = now_ns
            .max(bank.next_free_ns)
            .max(self.bus_next_free_ns[channel]);
        let row_latency = match bank.open_row {
            Some(r) if r == row => {
                self.stats.row_hits += 1;
                self.cfg.t_cas_ns
            }
            Some(_) => self.cfg.t_rp_ns + self.cfg.t_rcd_ns + self.cfg.t_cas_ns,
            None => self.cfg.t_rcd_ns + self.cfg.t_cas_ns,
        };
        bank.open_row = Some(row);
        bank.next_free_ns = start + row_latency;
        self.bus_next_free_ns[channel] = start + row_latency + burst;
        let done = start + row_latency + burst + self.cfg.ctrl_ns;
        self.stats.accesses += 1;
        self.stats.bytes += 64;
        if is_read {
            self.stats.reads += 1;
            self.stats.total_read_latency_ns += done - now_ns;
        }
        done
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// The configured zero-load latency (Fig. 9 reference line).
    pub fn zero_load_ns(&self) -> f64 {
        self.cfg.zero_load_ns() + self.cfg.t_rcd_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::ddr4_3200(2))
    }

    #[test]
    fn first_access_pays_activate() {
        let mut d = dram();
        let done = d.access(0.0, 0, true);
        // tRCD + tCAS + burst + ctrl = 13.75+13.75+2.5+25
        assert!((done - 55.0).abs() < 1.0, "done={done}");
    }

    #[test]
    fn row_hit_is_faster() {
        let mut d = dram();
        let first = d.access(0.0, 0, true);
        // Block 2 maps to channel 0 (even block), same bank, same row.
        let second = d.access(first, 128, true) - first;
        assert!(second < first, "row hit {second} < first {first}");
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_is_slowest() {
        let mut d = dram();
        let t1 = d.access(0.0, 0, true);
        // Same bank, different row: row_bytes * banks_per_channel stride.
        let conflict_addr = 8192 * 16;
        let t2 = d.access(t1, conflict_addr, true) - t1;
        let t3 = d.access(t1 + t2, conflict_addr + 64, true);
        let hit_lat = t3 - (t1 + t2);
        assert!(t2 > hit_lat, "conflict {t2} > hit {hit_lat}");
    }

    #[test]
    fn bank_queueing_delays() {
        let mut d = dram();
        // Two back-to-back accesses to the same bank at t=0: the second
        // waits for the first.
        let a = d.access(0.0, 0, true);
        let b = d.access(0.0, 64 * 2, true); // same channel? block 2 -> ch 0
        assert!(b > a - 30.0, "second access must queue: a={a} b={b}");
    }

    #[test]
    fn channels_are_parallel() {
        let mut d = dram();
        let a = d.access(0.0, 0, true); // channel 0
        let b = d.access(0.0, 64, true); // channel 1

        // Different channels: no bus queueing between them.
        assert!((a - b).abs() < 1.0);
    }

    #[test]
    fn service_multiplier_slows_bus() {
        let mut d = dram();
        d.service_multiplier = 4.0;
        let t0 = d.access(0.0, 0, true);
        let t1 = d.access(0.0, 128, true); // same channel, bus queued
        let mut fast = dram();
        let f0 = fast.access(0.0, 0, true);
        let f1 = fast.access(0.0, 128, true);
        assert!((t1 - t0) >= (f1 - f0), "dummy pressure increases queueing");
    }

    #[test]
    fn stats_accumulate() {
        let mut d = dram();
        d.access(0.0, 0, true);
        d.access(0.0, 4096, false);
        let s = d.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes, 128);
        assert!(s.total_read_latency_ns > 0.0);
    }
}
