//! Node- and rack-level simulation: cores driving traces through the cache
//! hierarchy into the protected memory system.
//!
//! The timing model is event-ordered with shared-resource queueing (banks,
//! channel buses, CXL links) and an MLP overlap factor on read stalls — the
//! same altitude as the paper's Sniper "interval" model. Four protection
//! configurations route each LLC miss differently:
//!
//! * **NoProtect** — data access only.
//! * **C** — + AES-XTS decrypt after the data arrives.
//! * **CI** — + MAC fetch (on MAC-cache miss) in parallel with data, MAC
//!   check overlapped with decryption.
//! * **Toleo** — + stealth-version fetch over the CXL IDE link on a
//!   stealth-cache miss, in parallel with the data+MAC path.
//! * **InvisiMem** — all memory in smart packages: double encryption,
//!   size-padded packets, and constant-rate dummy traffic.

// audit: allow-file(panic, simulator invariants: a panic aborts the offline run with a trace, no production path)

use crate::cache::{Hierarchy, HitLevel};
use crate::config::{Protection, SimConfig};
use crate::dram::Dram;
use crate::link::Link;
use toleo_core::cache::{MacCache, StealthCache};
use toleo_core::config::ToleoConfig;
use toleo_core::device::{DeviceUsage, ToleoDevice};
use toleo_core::layout;
use toleo_workloads::trace::{Op, Trace};

/// Effective bus-occupancy multiplier for InvisiMem: reads and writes use
/// same-size packets (~80 B each way vs one 64 B burst) and the channel
/// carries constant-rate dummy packets to hide timing (paper §7.1 reports
/// 2.1x read latency from this bandwidth pressure).
const INVISIMEM_BUS_PRESSURE: f64 = 8.0;

/// Fixed per-access packetization + secure-channel processing latency for
/// InvisiMem (packet assembly, header crypto at both endpoints).
const INVISIMEM_PACKET_NS: f64 = 25.0;

/// Per-run results: everything the figures need.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Workload name.
    pub name: String,
    /// Instructions retired.
    pub instructions: u64,
    /// Simulated time, ns.
    pub ns: f64,
    /// Core cycles (ns * freq).
    pub cycles: f64,
    /// LLC misses (reads + write allocations).
    pub llc_misses: u64,
    /// LLC misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Data bytes moved to/from memory.
    pub bytes_data: u64,
    /// MAC (+ co-located UV) bytes.
    pub bytes_mac: u64,
    /// Stealth-version bytes on the Toleo link.
    pub bytes_stealth: u64,
    /// Dummy/padding bytes (InvisiMem).
    pub bytes_dummy: u64,
    /// LLC read misses (latency sample count).
    pub read_misses: u64,
    /// Mean raw memory latency per read miss, ns.
    pub avg_dram_ns: f64,
    /// Mean decrypt addition, ns.
    pub avg_aes_ns: f64,
    /// Mean integrity addition, ns.
    pub avg_mac_ns: f64,
    /// Mean freshness addition, ns.
    pub avg_fresh_ns: f64,
    /// Stealth-cache hit rate (0 if not applicable).
    pub stealth_hit_rate: f64,
    /// MAC-cache hit rate (0 if not applicable).
    pub mac_hit_rate: f64,
    /// Trip-format page counts at end of run (flat, uneven, full).
    pub trip_pages: (u64, u64, u64),
    /// Peak Toleo usage snapshot.
    pub peak_toleo: DeviceUsage,
    /// Usage samples over time: (instructions, usage).
    pub usage_timeline: Vec<(u64, DeviceUsage)>,
    /// Working-set size reported by the trace.
    pub rss_bytes: u64,
}

/// Typed failure of an overhead computation over degenerate runs.
///
/// `toleo.cycles / base.cycles - 1.0` silently produces NaN (0/0 on two
/// empty traces) or ±inf (zero-cycle baseline) — values that propagate
/// into averages and tables as garbage instead of failing loudly. The
/// fig/table binaries and the docs go through
/// [`RunStats::overhead_vs`], which reports these cases as errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OverheadError {
    /// The baseline run has zero or non-finite cycles (empty trace, or a
    /// run that never executed) — the ratio is undefined.
    DegenerateBaseline {
        /// The baseline's cycle count.
        cycles: f64,
    },
    /// The protected run's cycle count is non-finite.
    DegenerateRun {
        /// The protected run's cycle count.
        cycles: f64,
    },
}

impl std::fmt::Display for OverheadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverheadError::DegenerateBaseline { cycles } => write!(
                f,
                "baseline run has {cycles} cycles: overhead undefined (empty trace?)"
            ),
            OverheadError::DegenerateRun { cycles } => {
                write!(f, "protected run has non-finite cycles ({cycles})")
            }
        }
    }
}

impl std::error::Error for OverheadError {}

impl RunStats {
    /// Average read latency over all components, ns.
    pub fn avg_read_latency_ns(&self) -> f64 {
        self.avg_dram_ns + self.avg_aes_ns + self.avg_mac_ns + self.avg_fresh_ns
    }

    /// Execution-time overhead of this run relative to `base`:
    /// `self.cycles / base.cycles - 1.0`, guarded against the
    /// zero-cycle/empty-trace runs that would silently produce NaN or
    /// ±inf.
    ///
    /// # Errors
    ///
    /// [`OverheadError::DegenerateBaseline`] if `base` has zero or
    /// non-finite cycles; [`OverheadError::DegenerateRun`] if this run's
    /// cycles are non-finite.
    pub fn overhead_vs(&self, base: &RunStats) -> Result<f64, OverheadError> {
        if !base.cycles.is_finite() || base.cycles <= 0.0 {
            return Err(OverheadError::DegenerateBaseline {
                cycles: base.cycles,
            });
        }
        if !self.cycles.is_finite() {
            return Err(OverheadError::DegenerateRun {
                cycles: self.cycles,
            });
        }
        Ok(self.cycles / base.cycles - 1.0)
    }

    /// Total metadata + data bytes per instruction (Fig. 8 metric).
    pub fn bytes_per_instruction(&self) -> f64 {
        (self.bytes_data + self.bytes_mac + self.bytes_stealth + self.bytes_dummy) as f64
            / self.instructions.max(1) as f64
    }

    /// Peak Toleo usage in GB per TB of protected data (Fig. 11 metric).
    ///
    /// Following the paper's accounting, the statically mapped flat-entry
    /// array is charged for *every* RSS page (12 B / 4 KB), while uneven
    /// and full side entries are charged as dynamically allocated.
    pub fn toleo_gb_per_tb(&self) -> f64 {
        let static_flat = self.rss_bytes / 4096 * 12;
        (static_flat + self.peak_toleo.dynamic_bytes) as f64 / self.rss_bytes.max(1) as f64 * 1000.0
    }
}

/// Resources shared across the rack: the CXL pool DRAM and the single
/// Toleo device.
#[derive(Debug)]
pub struct SharedMemory {
    /// The disaggregated memory pool's DRAM.
    pub pool: Dram,
    /// The rack's one Toleo device (None outside the Toleo configuration).
    pub device: Option<ToleoDevice>,
}

impl SharedMemory {
    /// Builds shared resources for a given config.
    pub fn new(cfg: &SimConfig) -> Self {
        let device = if cfg.protection == Protection::Toleo {
            let mut tcfg = ToleoConfig::small();
            // Protect enough pages for any scaled workload.
            tcfg.protected_bytes = 1 << 32; // 4 GiB of protected space
            tcfg.device_capacity_bytes = tcfg.flat_array_bytes() + (64 << 20);
            Some(ToleoDevice::new(tcfg).expect("valid ToleoConfig"))
        } else {
            None
        };
        let mut pool = Dram::new(cfg.pool_dram);
        if cfg.protection == Protection::InvisiMem {
            pool.service_multiplier = INVISIMEM_BUS_PRESSURE;
        }
        SharedMemory { pool, device }
    }
}

/// Read-latency breakdown of one LLC read miss.
#[derive(Debug, Clone, Copy, Default)]
struct ReadBreakdown {
    dram: f64,
    aes: f64,
    mac: f64,
    fresh: f64,
}

/// A compute node running one trace.
#[derive(Debug)]
pub struct Node {
    cfg: SimConfig,
    hier: Hierarchy,
    local: Dram,
    pool_link: Link,
    toleo_link: Link,
    stealth_cache: StealthCache,
    mac_cache: MacCache,
    now_ns: f64,
    instructions: u64,
    stats: RunStats,
    sum_bd: ReadBreakdown,
    mlp: f64,
    sample_every: u64,
    next_sample: u64,
}

impl Node {
    /// Creates a node for `cfg`.
    pub fn new(cfg: SimConfig) -> Self {
        let mut local = Dram::new(cfg.dram);
        if cfg.protection == Protection::InvisiMem {
            local.service_multiplier = INVISIMEM_BUS_PRESSURE;
        }
        Node {
            hier: Hierarchy::new(&cfg),
            local,
            pool_link: Link::new(cfg.pool_link),
            toleo_link: Link::new(cfg.toleo_link),
            stealth_cache: StealthCache::paper_default(),
            mac_cache: MacCache::new(cfg.mac_cache_kib),
            now_ns: 0.0,
            instructions: 0,
            stats: RunStats::default(),
            sum_bd: ReadBreakdown::default(),
            mlp: 4.0,
            sample_every: 50_000,
            next_sample: 0,
            cfg,
        }
    }

    fn is_remote(&self, addr: u64) -> bool {
        // Static page-granular hash mapping, bandwidth-proportional.
        let page = addr / 4096;
        let h = page.wrapping_mul(0x9e3779b97f4a7c15) >> 40;
        (h as f64 / (1u64 << 24) as f64) < self.cfg.remote_page_fraction
    }

    /// Raw (unprotected) memory access; returns completion time.
    fn memory_access(
        &mut self,
        shared: &mut SharedMemory,
        now: f64,
        addr: u64,
        is_read: bool,
    ) -> f64 {
        let padded = self.cfg.protection == Protection::InvisiMem;
        if self.is_remote(addr) {
            // Request out, pool DRAM access, response back.
            let (req, resp) = if padded { (80, 80) } else { (16, 64) };
            let arrive = self.pool_link.transfer(now, req);
            let served = shared.pool.access(arrive, addr, is_read);
            let done = self.pool_link.transfer(served, resp);
            self.stats.bytes_data += 64;
            if padded {
                self.stats.bytes_dummy += (req + resp) - 64 + 16;
            }
            done
        } else {
            let done = self.local.access(now, addr, is_read);
            self.stats.bytes_data += 64;
            if padded {
                // Same-size packets + header overhead on the local smart
                // memory channel.
                self.stats.bytes_dummy += 96;
            }
            done
        }
    }

    /// A protected read (LLC read miss). Returns completion time and the
    /// latency breakdown.
    fn protected_read(&mut self, shared: &mut SharedMemory, addr: u64) -> (f64, ReadBreakdown) {
        let now = self.now_ns;
        let aes_ns = self.cfg.cycles_to_ns(self.cfg.aes_cycles);
        let mut bd = ReadBreakdown::default();
        let data_ready = self.memory_access(shared, now, addr, true);
        bd.dram = data_ready - now;
        let mut done = data_ready;
        match self.cfg.protection {
            Protection::NoProtect => {}
            Protection::C => {
                done += aes_ns;
                bd.aes = aes_ns;
            }
            Protection::Ci | Protection::Toleo => {
                // MAC fetch in parallel with data; check overlaps decrypt.
                let mac_ready = if self.mac_cache.access(addr) {
                    now
                } else {
                    self.stats.bytes_mac += 64;
                    let mac_addr = 0x4000_0000_0000 | (layout::mac_block_index(addr) * 64);
                    self.memory_access_meta(shared, now, mac_addr)
                };
                let with_mac = data_ready.max(mac_ready) + aes_ns;
                bd.aes = aes_ns;
                bd.mac = with_mac - (data_ready + aes_ns);
                done = with_mac;
                if self.cfg.protection == Protection::Toleo {
                    let page = layout::page_of(addr);
                    let dev = shared.device.as_mut().expect("toleo device");
                    let fmt = dev
                        .page_format(page)
                        .unwrap_or(toleo_core::trip::TripFormat::Flat);
                    let fresh_ready = if self.stealth_cache.access(page, fmt) {
                        now
                    } else {
                        let resp: u64 = match fmt {
                            toleo_core::trip::TripFormat::Flat => 16,
                            _ => 56,
                        };
                        self.stats.bytes_stealth += resp + 16;
                        let req_arrive = self.toleo_link.transfer(now, 16);
                        let served = req_arrive + self.cfg.toleo_dram_ns;
                        self.toleo_link.transfer(served, resp)
                    };
                    let _ = dev.read(page, layout::line_of(addr));
                    let with_fresh = done.max(fresh_ready);
                    bd.fresh = with_fresh - done;
                    done = with_fresh;
                }
            }
            Protection::InvisiMem => {
                // Double encryption plus packetization at both endpoints.
                done += 2.0 * aes_ns + INVISIMEM_PACKET_NS;
                bd.aes = 2.0 * aes_ns + INVISIMEM_PACKET_NS;
            }
        }
        (done, bd)
    }

    /// Metadata access (MAC block) to the same memory node as the data.
    fn memory_access_meta(&mut self, shared: &mut SharedMemory, now: f64, addr: u64) -> f64 {
        if self.is_remote(addr) {
            let arrive = self.pool_link.transfer(now, 16);
            let served = shared.pool.access(arrive, addr, true);
            self.pool_link.transfer(served, 64)
        } else {
            self.local.access(now, addr, true)
        }
    }

    /// A protected writeback (dirty LLC eviction). Pure bandwidth: the core
    /// does not stall on it.
    fn protected_write(&mut self, shared: &mut SharedMemory, addr: u64) {
        let now = self.now_ns;
        let _ = self.memory_access(shared, now, addr, false);
        match self.cfg.protection {
            Protection::NoProtect | Protection::C | Protection::InvisiMem => {}
            Protection::Ci | Protection::Toleo => {
                if !self.mac_cache.access(addr) {
                    self.stats.bytes_mac += 64;
                    let mac_addr = 0x4000_0000_0000 | (layout::mac_block_index(addr) * 64);
                    let _ = self.memory_access_meta(shared, now, mac_addr);
                }
                if self.cfg.protection == Protection::Toleo {
                    let page = layout::page_of(addr);
                    let line = layout::line_of(addr);
                    let dev = shared.device.as_mut().expect("toleo device");
                    let fmt = dev
                        .page_format(page)
                        .unwrap_or(toleo_core::trip::TripFormat::Flat);
                    // The stealth caches are inclusive *writeback* caches:
                    // on a hit the cached Trip entry is updated in place and
                    // no link traffic occurs; a miss fetches the entry (and
                    // eventually writes back a dirty victim). This is what
                    // lets one 12 B flat entry amortize 64 block writes and
                    // keeps the x2 IDE link almost idle (Fig. 8).
                    if !self.stealth_cache.access(page, fmt) {
                        let entry: u64 = match fmt {
                            toleo_core::trip::TripFormat::Flat => 16,
                            _ => 56,
                        };
                        // Fetch + dirty-victim writeback.
                        self.stats.bytes_stealth += 16 + entry + entry;
                        let arrive = self.toleo_link.transfer(now, 16);
                        let _ = self
                            .toleo_link
                            .transfer(arrive + self.cfg.toleo_dram_ns, 2 * entry);
                    }
                    match dev.update(page, line) {
                        Ok(resp) => {
                            if resp.uv_update() {
                                // UV_UPDATE + page re-encryption: read and
                                // re-write all 64 blocks, notify over CXL.
                                self.stats.bytes_data += 2 * 4096;
                                self.stats.bytes_stealth += 32;
                                self.stealth_cache.invalidate_page(page);
                            }
                        }
                        Err(_) => {
                            // Device full: the OS would downgrade pages; we
                            // model the downgrade immediately.
                            let _ = dev.reset(page);
                        }
                    }
                }
            }
        }
    }

    /// Executes one trace operation. Returns false when the trace is done.
    fn exec_op(&mut self, shared: &mut SharedMemory, op: &Op) {
        match op {
            Op::Compute(n) => {
                self.instructions += *n as u64;
                self.now_ns += *n as f64 / (self.cfg.dispatch_width as f64 * self.cfg.freq_ghz);
            }
            Op::Read(addr) | Op::Write(addr) => {
                let is_write = matches!(op, Op::Write(_));
                self.instructions += 1;
                self.now_ns += 1.0 / (self.cfg.dispatch_width as f64 * self.cfg.freq_ghz);
                let res = self.hier.access(*addr, is_write);
                for wb in &res.llc_writebacks {
                    self.protected_write(shared, *wb);
                }
                match res.level {
                    HitLevel::L1 => {}
                    HitLevel::L2 => {
                        self.now_ns += self.cfg.cycles_to_ns(self.cfg.l2.latency_cycles) / self.mlp;
                    }
                    HitLevel::L3 => {
                        self.now_ns += self.cfg.cycles_to_ns(self.cfg.l3.latency_cycles) / self.mlp;
                    }
                    HitLevel::Memory => {
                        if is_write {
                            // Write-allocate fetch: mostly hidden by the
                            // store buffer; charge bandwidth + 1/4 latency.
                            let (done, _) = self.protected_read(shared, *addr);
                            self.now_ns += (done - self.now_ns).max(0.0) / (self.mlp * 4.0);
                        } else {
                            let (done, bd) = self.protected_read(shared, *addr);
                            self.stats.read_misses += 1;
                            self.sum_bd.dram += bd.dram;
                            self.sum_bd.aes += bd.aes;
                            self.sum_bd.mac += bd.mac;
                            self.sum_bd.fresh += bd.fresh;
                            self.now_ns += (done - self.now_ns).max(0.0) / self.mlp;
                        }
                    }
                }
            }
        }
        if self.instructions >= self.next_sample {
            self.next_sample += self.sample_every;
            if let Some(dev) = shared.device.as_ref() {
                self.stats
                    .usage_timeline
                    .push((self.instructions, dev.usage()));
            }
        }
    }

    fn finalize(&mut self, shared: &mut SharedMemory, trace: &Trace) -> RunStats {
        // Flush dirty lines so all writes reach the version system.
        for wb in self.hier.drain() {
            self.protected_write(shared, wb);
        }
        let mut s = std::mem::take(&mut self.stats);
        s.name = trace.name.clone();
        s.rss_bytes = trace.rss_bytes;
        s.instructions = self.instructions;
        s.ns = self.now_ns;
        s.cycles = self.now_ns * self.cfg.freq_ghz;
        s.llc_misses = self.hier.llc_misses();
        s.llc_mpki = s.llc_misses as f64 / (s.instructions as f64 / 1000.0);
        let n = s.read_misses.max(1) as f64;
        s.avg_dram_ns = self.sum_bd.dram / n;
        s.avg_aes_ns = self.sum_bd.aes / n;
        s.avg_mac_ns = self.sum_bd.mac / n;
        s.avg_fresh_ns = self.sum_bd.fresh / n;
        s.stealth_hit_rate = self.stealth_cache.stats().hit_rate();
        s.mac_hit_rate = self.mac_cache.stats().hit_rate();
        if let Some(dev) = shared.device.as_ref() {
            let u = dev.usage();
            s.trip_pages = (u.flat_pages, u.uneven_pages, u.full_pages);
            s.peak_toleo = s
                .usage_timeline
                .iter()
                .map(|(_, u)| *u)
                .chain(std::iter::once(u))
                .max_by_key(DeviceUsage::total_bytes)
                .unwrap_or_default();
        }
        s
    }
}

/// A single-node system (the paper's per-benchmark runs).
#[derive(Debug)]
pub struct System {
    node: Node,
    shared: SharedMemory,
}

impl System {
    /// Creates a system for the given configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use toleo_sim::config::{Protection, SimConfig};
    /// use toleo_sim::system::System;
    /// use toleo_workloads::{generate, Benchmark, GenConfig};
    ///
    /// let trace = generate(Benchmark::Chain, &GenConfig::tiny());
    /// let stats = System::new(SimConfig::scaled(Protection::Toleo)).run(&trace);
    /// assert!(stats.cycles > 0.0);
    /// ```
    pub fn new(cfg: SimConfig) -> Self {
        System {
            shared: SharedMemory::new(&cfg),
            node: Node::new(cfg),
        }
    }

    /// Sets the MLP overlap factor (defaults to the trace's hint in
    /// [`run`](Self::run)).
    pub fn run(&mut self, trace: &Trace) -> RunStats {
        self.node.mlp = trace.mlp.max(1.0);
        for op in &trace.ops {
            self.node.exec_op(&mut self.shared, op);
        }
        self.node.finalize(&mut self.shared, trace)
    }

    /// The shared memory (pool + device) for inspection.
    pub fn shared(&self) -> &SharedMemory {
        &self.shared
    }
}

/// A rack of nodes sharing one memory pool and one Toleo device (Fig. 1).
#[derive(Debug)]
pub struct Rack {
    nodes: Vec<Node>,
    shared: SharedMemory,
}

impl Rack {
    /// Creates a rack of `n` nodes.
    pub fn new(cfg: SimConfig, n: usize) -> Self {
        Rack {
            nodes: (0..n).map(|_| Node::new(cfg.clone())).collect(),
            shared: SharedMemory::new(&cfg),
        }
    }

    /// Runs one trace per node, interleaved in simulated time (the node
    /// with the earliest clock steps next), so contention on the shared
    /// pool and Toleo device is modelled.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len()` differs from the node count.
    pub fn run(&mut self, traces: &[Trace]) -> Vec<RunStats> {
        assert_eq!(traces.len(), self.nodes.len(), "one trace per node");
        let mut cursors = vec![0usize; self.nodes.len()];
        for (node, trace) in self.nodes.iter_mut().zip(traces) {
            node.mlp = trace.mlp.max(1.0);
            // Offset address spaces per node so they don't alias in the
            // shared pool and device.
            let _ = trace;
        }
        loop {
            // Pick the unfinished node with the smallest clock.
            let mut best: Option<usize> = None;
            for (i, node) in self.nodes.iter().enumerate() {
                if cursors[i] < traces[i].ops.len()
                    && best.is_none_or(|b| node.now_ns < self.nodes[b].now_ns)
                {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            // Execute a small burst for efficiency.
            let burst = 64.min(traces[i].ops.len() - cursors[i]);
            for k in 0..burst {
                let op = offset_op(&traces[i].ops[cursors[i] + k], i as u64);
                self.nodes[i].exec_op(&mut self.shared, &op);
            }
            cursors[i] += burst;
        }
        self.nodes
            .iter_mut()
            .zip(traces)
            .map(|(n, t)| n.finalize(&mut self.shared, t))
            .collect()
    }
}

/// Shifts a node's addresses into a private 1 TiB window.
fn offset_op(op: &Op, node: u64) -> Op {
    let off = node << 33; // 8 GiB apart
    match op {
        Op::Compute(n) => Op::Compute(*n),
        Op::Read(a) => Op::Read(a + off),
        Op::Write(a) => Op::Write(a + off),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toleo_workloads::{generate, Benchmark, GenConfig};

    fn run_bench(b: Benchmark, p: Protection) -> RunStats {
        let trace = generate(b, &GenConfig::tiny());
        System::new(SimConfig::scaled(p)).run(&trace)
    }

    #[test]
    fn overhead_vs_guards_degenerate_runs() {
        let mut base = RunStats::default();
        let mut run = RunStats {
            cycles: 100.0,
            ..RunStats::default()
        };
        // Zero-cycle baseline (empty trace): typed error, not NaN/inf.
        assert_eq!(
            run.overhead_vs(&base),
            Err(OverheadError::DegenerateBaseline { cycles: 0.0 })
        );
        base.cycles = f64::NAN;
        assert!(matches!(
            run.overhead_vs(&base),
            Err(OverheadError::DegenerateBaseline { .. })
        ));
        base.cycles = 80.0;
        run.cycles = f64::INFINITY;
        assert!(matches!(
            run.overhead_vs(&base),
            Err(OverheadError::DegenerateRun { .. })
        ));
        // The healthy path matches the raw ratio.
        run.cycles = 100.0;
        let ovh = run.overhead_vs(&base).unwrap();
        assert!((ovh - 0.25).abs() < 1e-12);
        assert!(OverheadError::DegenerateBaseline { cycles: 0.0 }
            .to_string()
            .contains("undefined"));
    }

    #[test]
    fn empty_trace_run_reports_degenerate_overhead() {
        // An actually-empty trace through the full system must route into
        // the typed error rather than a NaN overhead.
        let empty = Trace::new("empty");
        let base = System::new(SimConfig::scaled(Protection::NoProtect)).run(&empty);
        let toleo = System::new(SimConfig::scaled(Protection::Toleo)).run(&empty);
        assert!(matches!(
            toleo.overhead_vs(&base),
            Err(OverheadError::DegenerateBaseline { .. })
        ));
    }

    #[test]
    fn noprotect_runs_and_counts() {
        let s = run_bench(Benchmark::Chain, Protection::NoProtect);
        assert!(s.instructions > 100_000);
        assert!(s.cycles > 0.0);
        assert_eq!(s.bytes_mac, 0);
        assert_eq!(s.bytes_stealth, 0);
        assert!(s.avg_aes_ns == 0.0);
    }

    #[test]
    fn protection_orders_execution_time() {
        let base = run_bench(Benchmark::Pr, Protection::NoProtect);
        let c = run_bench(Benchmark::Pr, Protection::C);
        let ci = run_bench(Benchmark::Pr, Protection::Ci);
        let toleo = run_bench(Benchmark::Pr, Protection::Toleo);
        let invisimem = run_bench(Benchmark::Pr, Protection::InvisiMem);
        assert!(c.cycles >= base.cycles, "C >= NoProtect");
        assert!(ci.cycles >= c.cycles, "CI >= C");
        assert!(toleo.cycles >= ci.cycles * 0.99, "Toleo ~>= CI");
        assert!(
            invisimem.cycles > ci.cycles,
            "InvisiMem is the most expensive"
        );
        // Toleo's freshness addition over CI is small (paper: 1-2%).
        let toleo_over_ci = toleo.overhead_vs(&ci).expect("both runs executed");
        assert!(
            toleo_over_ci < 0.15,
            "Toleo adds {:.1}% over CI",
            toleo_over_ci * 100.0
        );
    }

    #[test]
    fn ci_fetches_macs() {
        let s = run_bench(Benchmark::Bfs, Protection::Ci);
        assert!(s.bytes_mac > 0);
        assert!(s.mac_hit_rate > 0.0 && s.mac_hit_rate < 1.0);
        assert!(s.avg_mac_ns >= 0.0);
    }

    #[test]
    fn toleo_stealth_cache_hits_high_for_regular_workloads() {
        let s = run_bench(Benchmark::Bsw, Protection::Toleo);
        assert!(
            s.stealth_hit_rate > 0.9,
            "bsw stealth hit {}",
            s.stealth_hit_rate
        );
    }

    #[test]
    fn toleo_usage_timeline_sampled() {
        let s = run_bench(Benchmark::Pr, Protection::Toleo);
        assert!(!s.usage_timeline.is_empty());
        assert!(s.peak_toleo.total_bytes() > 0);
        let (flat, _, _) = s.trip_pages;
        assert!(flat > 0);
    }

    #[test]
    fn invisimem_counts_dummy_bytes() {
        let s = run_bench(Benchmark::Bfs, Protection::InvisiMem);
        assert!(s.bytes_dummy > 0);
    }

    #[test]
    fn mpki_orders_across_workloads() {
        let pr = run_bench(Benchmark::Pr, Protection::NoProtect);
        let chain = run_bench(Benchmark::Chain, Protection::NoProtect);
        assert!(
            pr.llc_mpki > 5.0 * chain.llc_mpki,
            "pr mpki {} must dwarf chain {}",
            pr.llc_mpki,
            chain.llc_mpki
        );
    }

    #[test]
    fn rack_shares_device() {
        let traces: Vec<_> = [Benchmark::Chain, Benchmark::Dbg]
            .iter()
            .map(|b| {
                generate(
                    *b,
                    &GenConfig {
                        mem_ops: 2_000,
                        ..GenConfig::tiny()
                    },
                )
            })
            .collect();
        let mut rack = Rack::new(SimConfig::scaled(Protection::Toleo), 2);
        let stats = rack.run(&traces);
        assert_eq!(stats.len(), 2);
        for s in &stats {
            assert!(s.cycles > 0.0);
        }
        // The shared device saw updates from both nodes.
        let dev = rack.shared.device.as_ref().unwrap();
        assert!(dev.stats().updates > 0);
    }

    #[test]
    #[should_panic(expected = "one trace per node")]
    fn rack_trace_count_mismatch_panics() {
        let mut rack = Rack::new(SimConfig::scaled(Protection::Toleo), 2);
        let t = generate(Benchmark::Chain, &GenConfig::tiny());
        rack.run(&[t]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use toleo_workloads::trace::Op;

    #[test]
    fn remote_fraction_close_to_configured() {
        let cfg = SimConfig::scaled(Protection::NoProtect);
        let node = Node::new(cfg.clone());
        let remote = (0..100_000u64).filter(|p| node.is_remote(p * 4096)).count();
        let frac = remote as f64 / 100_000.0;
        assert!(
            (frac - cfg.remote_page_fraction).abs() < 0.01,
            "remote fraction {frac} vs configured {}",
            cfg.remote_page_fraction
        );
    }

    #[test]
    fn empty_trace_finalizes_cleanly() {
        let trace = Trace::new("empty");
        let s = System::new(SimConfig::scaled(Protection::Toleo)).run(&trace);
        assert_eq!(s.instructions, 0);
        assert_eq!(s.read_misses, 0);
        assert_eq!(s.llc_misses, 0);
    }

    #[test]
    fn compute_only_trace_costs_dispatch_time() {
        let mut trace = Trace::new("compute");
        trace.ops.push(Op::Compute(6_000_000));
        let s = System::new(SimConfig::scaled(Protection::NoProtect)).run(&trace);
        // 6M instructions at 6-wide = 1M cycles.
        assert!((s.cycles - 1_000_000.0).abs() < 1.0, "cycles {}", s.cycles);
    }

    #[test]
    fn c_config_charges_only_aes() {
        let mut trace = Trace::new("reads");
        for i in 0..5_000u64 {
            trace.ops.push(Op::Read(i * 64 * 97)); // spread: all miss
        }
        let s = System::new(SimConfig::scaled(Protection::C)).run(&trace);
        assert!(
            s.avg_aes_ns > 17.0 && s.avg_aes_ns < 19.0,
            "aes {}",
            s.avg_aes_ns
        );
        assert_eq!(s.avg_mac_ns, 0.0);
        assert_eq!(s.avg_fresh_ns, 0.0);
        assert_eq!(s.bytes_mac, 0);
    }

    #[test]
    fn drain_flushes_pending_writebacks_to_device() {
        let mut trace = Trace::new("writes");
        for i in 0..100u64 {
            trace.ops.push(Op::Write(i * 64));
        }
        let mut sys = System::new(SimConfig::scaled(Protection::Toleo));
        let s = sys.run(&trace);
        // All 100 dirty lines must have reached the version system by the
        // end-of-run drain even though none were evicted naturally.
        let dev = sys.shared().device.as_ref().unwrap();
        assert!(
            dev.stats().updates >= 100,
            "updates {}",
            dev.stats().updates
        );
        assert_eq!(s.name, "writes");
    }

    #[test]
    fn stats_bytes_line_up_with_dram_traffic() {
        let mut trace = Trace::new("reads");
        for i in 0..2_000u64 {
            trace.ops.push(Op::Read(i * 64 * 101));
        }
        let s = System::new(SimConfig::scaled(Protection::NoProtect)).run(&trace);
        assert_eq!(s.bytes_data, s.llc_misses * 64, "one 64B fetch per miss");
    }
}
