//! A lexed source file plus the derived structure the rules share:
//! `#[cfg(test)]` / `#[test]` regions and `// audit:` allow annotations.

use crate::lexer::{lex, Token, TokenKind};

/// An `// audit: allow(rule, reason)` or `// audit: allow-file(rule,
/// reason)` annotation found in a source file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Allowance {
    /// Repo-relative path of the file carrying the annotation.
    pub file: String,
    /// The rule being allowed (`panic`, `indexing`, `secret`, `lock`,
    /// `poll`).
    pub rule: String,
    /// `true` for `allow-file` (covers the whole file), `false` for a
    /// line-level `allow` (covers its own line and the next code line).
    pub file_level: bool,
    /// The free-text justification inside the annotation.
    pub reason: String,
    /// Line the annotation sits on (1-based). Not part of the baseline
    /// identity — code moves — but used for diagnostics.
    pub line: u32,
    /// First line this annotation covers (line-level only).
    pub covers_line: u32,
}

/// One source file, lexed and scoped, ready for the rules.
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub rel_path: String,
    /// Raw source lines (for `SAFETY:` comment proximity checks).
    pub lines: Vec<String>,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Token-index ranges `[start, end]` (inclusive) that belong to
    /// `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// All well-formed audit annotations outside test regions.
    pub allowances: Vec<Allowance>,
    /// Malformed `// audit:` comments: (line, error message).
    pub annotation_errors: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lexes and scopes `text` as the file at `rel_path`.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let test_regions = find_test_regions(&tokens);
        let mut file = SourceFile {
            rel_path: rel_path.to_string(),
            lines: text.lines().map(str::to_string).collect(),
            tokens,
            test_regions,
            allowances: Vec::new(),
            annotation_errors: Vec::new(),
        };
        file.collect_annotations();
        file
    }

    /// Whether token `idx` falls inside a `#[cfg(test)]`/`#[test]` item.
    pub fn in_test_region(&self, idx: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| idx >= start && idx <= end)
    }

    /// The previous non-comment token before `idx`, with its index.
    pub fn prev_code_token(&self, idx: usize) -> Option<(usize, &Token)> {
        self.tokens[..idx]
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| !t.is_comment())
    }

    /// The next non-comment token at or after `idx`, with its index.
    pub fn next_code_token(&self, idx: usize) -> Option<(usize, &Token)> {
        self.tokens[idx..]
            .iter()
            .enumerate()
            .find(|(_, t)| !t.is_comment())
            .map(|(off, t)| (idx + off, t))
    }

    /// Whether a line-level or file-level allowance for `rule` covers a
    /// finding on `line`.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allowances
            .iter()
            .any(|a| a.rule == rule && (a.file_level || a.line == line || a.covers_line == line))
    }

    fn collect_annotations(&mut self) {
        // A line-level annotation covers its own line and the next line
        // holding a non-comment token, so it can sit above the code it
        // excuses. Compute "next code line" per annotation.
        let mut found = Vec::new();
        for (idx, tok) in self.tokens.iter().enumerate() {
            if tok.kind != TokenKind::LineComment {
                continue;
            }
            let body = tok.text.trim_start_matches('/').trim();
            let Some(rest) = body.strip_prefix("audit:") else {
                continue;
            };
            if self.in_test_region(idx) {
                // Test code is outside every policy; an annotation there
                // would be dead weight.
                self.annotation_errors
                    .push((tok.line, "audit annotation inside test code".to_string()));
                continue;
            }
            match parse_annotation(rest.trim()) {
                Ok((file_level, rule, reason)) => {
                    let covers_line = self
                        .next_code_token(idx)
                        .map(|(_, t)| t.line)
                        .unwrap_or(tok.line);
                    found.push(Allowance {
                        file: self.rel_path.clone(),
                        rule,
                        file_level,
                        reason,
                        line: tok.line,
                        covers_line,
                    });
                }
                Err(msg) => self.annotation_errors.push((tok.line, msg)),
            }
        }
        self.allowances = found;
    }
}

/// Parses the body after `audit:`. Accepted forms:
/// `allow(rule, reason…)` and `allow-file(rule, reason…)`.
fn parse_annotation(body: &str) -> Result<(bool, String, String), String> {
    let (file_level, rest) = if let Some(r) = body.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = body.strip_prefix("allow") {
        (false, r)
    } else {
        return Err(format!(
            "unknown audit annotation `{body}` (expected `allow(rule, reason)` or `allow-file(rule, reason)`)"
        ));
    };
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| "audit annotation missing (rule, reason) parentheses".to_string())?;
    let (rule, reason) = inner
        .split_once(',')
        .ok_or_else(|| "audit annotation missing a reason after the rule".to_string())?;
    let rule = rule.trim();
    let reason = reason.trim();
    if !matches!(rule, "panic" | "indexing" | "secret" | "lock" | "poll") {
        return Err(format!(
            "unknown audit rule `{rule}` (expected panic, indexing, secret, lock or poll)"
        ));
    }
    if reason.is_empty() {
        return Err("audit annotation has an empty reason".to_string());
    }
    Ok((file_level, rule.to_string(), reason.to_string()))
}

/// Finds token ranges covered by `#[cfg(test)]` or `#[test]` items.
///
/// Lexical, not syntactic: after a test attribute we skip any further
/// attributes and comments, then bracket-match to the item's closing
/// brace (or stop at a top-level `;` for brace-less items). `cfg`
/// attributes merely *containing* `test` (e.g. `cfg(all(test, unix))`,
/// `cfg_attr(test, …)`) count as test scope — conservative in the
/// lenient direction, which only ever under-reports, never flags test
/// code as production.
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let Some(attr_end) = match_delim(tokens, i + 1, '[', ']') else {
            break;
        };
        let attr = &tokens[i + 2..attr_end];
        let idents: Vec<&str> = attr
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        // `test` directly under a `not(…)` (as in `cfg(not(test))`)
        // marks production-only code, not test code.
        let bare_test = attr.iter().enumerate().any(|(j, t)| {
            t.is_ident("test")
                && !(j >= 2 && attr[j - 1].is_punct('(') && attr[j - 2].is_ident("not"))
        });
        let is_test = idents == ["test"]
            || (matches!(idents.first(), Some(&"cfg" | &"cfg_attr")) && bare_test);
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        if let Some(region_end) = item_end(tokens, attr_end + 1) {
            regions.push((i, region_end));
            i = attr_end + 1; // keep scanning inside: harmless overlap
        } else {
            break;
        }
    }
    regions
}

/// Token index of the closing delimiter matching the opener at `open`.
fn match_delim(tokens: &[Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0i64;
    for (idx, tok) in tokens.iter().enumerate().skip(open) {
        if tok.is_punct(open_c) {
            depth += 1;
        } else if tok.is_punct(close_c) {
            depth -= 1;
            if depth <= 0 {
                return Some(idx);
            }
        }
    }
    None
}

/// Given the token after a test attribute, returns the index of the end
/// of the annotated item: the matching `}` of its body, or the `;` of a
/// brace-less item, or `None` at end of input.
fn item_end(tokens: &[Token], mut i: usize) -> Option<usize> {
    // Skip further attributes and comments between attribute and item.
    loop {
        match tokens.get(i) {
            Some(t) if t.is_comment() => i += 1,
            Some(t) if t.is_punct('#') && tokens.get(i + 1).is_some_and(|n| n.is_punct('[')) => {
                i = match_delim(tokens, i + 1, '[', ']')? + 1;
            }
            _ => break,
        }
    }
    // Find the body `{` (at zero paren/bracket depth) or a `;`.
    let mut parens = 0i32;
    let mut brackets = 0i32;
    while let Some(tok) = tokens.get(i) {
        if tok.is_punct('(') {
            parens += 1;
        } else if tok.is_punct(')') {
            parens -= 1;
        } else if tok.is_punct('[') {
            brackets += 1;
        } else if tok.is_punct(']') {
            brackets -= 1;
        } else if parens == 0 && brackets == 0 {
            if tok.is_punct(';') {
                return Some(i);
            }
            if tok.is_punct('{') {
                return match_delim(tokens, i, '{', '}');
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/demo/src/lib.rs", src)
    }

    #[test]
    fn cfg_test_module_is_a_region() {
        let f = file("fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\n");
        let unwrap_idx = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.in_test_region(unwrap_idx));
        let a_idx = f.tokens.iter().position(|t| t.is_ident("a")).unwrap();
        assert!(!f.in_test_region(a_idx));
    }

    #[test]
    fn test_fn_with_extra_attrs_is_a_region() {
        let f = file("#[test]\n#[should_panic]\nfn boom() { panic!(\"x\") }\nfn ok() {}");
        let panic_idx = f.tokens.iter().position(|t| t.is_ident("panic")).unwrap();
        assert!(f.in_test_region(panic_idx));
        let ok_idx = f.tokens.iter().rposition(|t| t.is_ident("ok")).unwrap();
        assert!(!f.in_test_region(ok_idx));
    }

    #[test]
    fn cfg_all_test_counts() {
        let f = file("#[cfg(all(test, unix))]\nmod t { fn x() {} }");
        let x_idx = f.tokens.iter().position(|t| t.is_ident("x")).unwrap();
        assert!(f.in_test_region(x_idx));
    }

    #[test]
    fn cfg_test_use_statement_has_no_body() {
        let f = file("#[cfg(test)]\nuse std::collections::HashMap;\nfn real() {}");
        let real_idx = f.tokens.iter().position(|t| t.is_ident("real")).unwrap();
        assert!(!f.in_test_region(real_idx));
    }

    #[test]
    fn fn_with_array_arg_before_body() {
        // The `[u8; 48]` bracket group must not derail body detection.
        let f = file("#[cfg(test)]\nfn seed(k: [u8; 48]) { k.len(); }\nfn prod() {}");
        let len_idx = f.tokens.iter().position(|t| t.is_ident("len")).unwrap();
        assert!(f.in_test_region(len_idx));
        let prod_idx = f.tokens.iter().position(|t| t.is_ident("prod")).unwrap();
        assert!(!f.in_test_region(prod_idx));
    }

    #[test]
    fn line_annotation_covers_next_code_line() {
        let f = file("// audit: allow(panic, startup invariant)\nlet x = y.unwrap();\n");
        assert_eq!(f.allowances.len(), 1);
        let a = &f.allowances[0];
        assert!(!a.file_level);
        assert_eq!(a.rule, "panic");
        assert_eq!(a.reason, "startup invariant");
        assert_eq!(a.covers_line, 2);
        assert!(f.allowed("panic", 2));
        assert!(!f.allowed("panic", 3));
    }

    #[test]
    fn trailing_annotation_covers_its_own_line() {
        let f = file("let x = y.unwrap(); // audit: allow(panic, checked above)\n");
        assert!(f.allowed("panic", 1));
    }

    #[test]
    fn file_level_annotation_covers_everything() {
        let f = file("// audit: allow-file(indexing, table lookups are masked)\nfn a() { t[0]; }\nfn b() { t[1]; }\n");
        assert!(f.allowed("indexing", 2));
        assert!(f.allowed("indexing", 3));
    }

    #[test]
    fn malformed_annotations_are_reported() {
        for bad in [
            "// audit: allow(panic)",
            "// audit: allow(nonsense, why)",
            "// audit: permit(panic, why)",
            "// audit: allow(panic, )",
        ] {
            let f = file(&format!("{bad}\nlet x = 1;\n"));
            assert_eq!(f.annotation_errors.len(), 1, "{bad}");
            assert!(f.allowances.is_empty(), "{bad}");
        }
    }

    #[test]
    fn annotation_in_test_code_is_an_error() {
        let f = file("#[cfg(test)]\nmod t {\n  // audit: allow(panic, pointless)\n  fn x() {}\n}");
        assert_eq!(f.annotation_errors.len(), 1);
    }
}
