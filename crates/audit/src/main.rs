//! `toleo-audit` CLI.
//!
//! ```text
//! toleo-audit [--check] [--json] [--fix-inventory] [--root PATH]
//! ```
//!
//! * default / `--check` — run every rule, print findings and the
//!   allowance inventory, exit 1 on any finding (CI mode).
//! * `--json` — machine-readable report on stdout (same exit code).
//! * `--fix-inventory` — regenerate the `unsafe`/`allow` sections of
//!   `AUDIT.json` from the tree (protocol tables preserved; a v1 file
//!   is migrated to schema v2), then re-run the audit so remaining
//!   findings are still visible.
//! * `--root PATH` — workspace root (default: current directory).

use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    json: bool,
    fix_inventory: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json: false,
        fix_inventory: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {} // the default behavior, kept as an explicit CI flag
            "--json" => opts.json = true,
            "--fix-inventory" => opts.fix_inventory = true,
            "--root" => {
                opts.root = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--root needs a path".to_string())?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "toleo-audit [--check] [--json] [--fix-inventory] [--root PATH]\n\
                     Enforces the workspace security/concurrency invariants: no-panic \
                     policy, unsafe inventory, atomic-protocol table, lock discipline, \
                     kill-poll probe coverage, secret hygiene.\n\
                     See README.md \"Static analysis\" for rules and annotation syntax."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("toleo-audit: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.fix_inventory {
        if let Err(e) = toleo_audit::fix_inventory(&opts.root) {
            eprintln!("toleo-audit: {e}");
            return ExitCode::from(2);
        }
        println!("AUDIT.json regenerated (protocol tables preserved, schema v2).");
    }
    let report = match toleo_audit::run_audit(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("toleo-audit: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            if f.line == 0 {
                println!("{}: [{}] {}", f.file, f.rule, f.message);
            } else {
                println!(
                    "{}:{}:{}: [{}] {}",
                    f.file, f.line, f.col, f.rule, f.message
                );
            }
        }
        if !report.findings.is_empty() {
            println!();
        }
        println!(
            "toleo-audit: {} files scanned, {} finding{}.",
            report.files_scanned,
            report.findings.len(),
            if report.findings.len() == 1 { "" } else { "s" },
        );
        if !report.allowances.is_empty() {
            println!(
                "allowance inventory ({} entr{} — this list only shrinks):",
                report.allowances.len(),
                if report.allowances.len() == 1 {
                    "y"
                } else {
                    "ies"
                },
            );
            for a in &report.allowances {
                println!(
                    "  {}:{} {}({}) — {}",
                    a.file,
                    a.line,
                    if a.file_level { "allow-file" } else { "allow" },
                    a.rule,
                    a.reason
                );
            }
        }
        if !report.unsafe_inventory.is_empty() {
            println!("unsafe inventory:");
            for (file, count) in &report.unsafe_inventory {
                println!("  {file}: {count}");
            }
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
