//! A minimal line/column-tracking Rust lexer.
//!
//! The audit rules only need a *token stream* — identifiers, punctuation,
//! literals and comments with accurate source positions — not a syntax
//! tree. Lexing (rather than regexing raw text) is what makes the rules
//! trustworthy: `unwrap` inside a string literal, `unsafe` inside a doc
//! comment and `Ordering::` inside a `//` comment must not count, and
//! `#[cfg(test)]` scoping needs real brace matching. The lexer handles
//! every literal form that could otherwise confuse a scanner: strings
//! with escapes, raw strings (`r#"…"#`), byte strings, C strings, char
//! literals vs. lifetimes, nested block comments and raw identifiers.
//!
//! It is deliberately dependency-free (no `proc-macro2`/`syn`): the
//! workspace vendors its dependencies offline and the auditor must not
//! depend on anything it audits.

/// What a [`Token`] is, at the granularity the audit rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `fn`, `r#type`, …).
    Ident,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// Numeric literal (`0x1f`, `1_000u64`, `1.5`).
    Number,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`, `c"…"`. Text includes the delimiters.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// `// …` comment (including `///` and `//!`), text without newline.
    LineComment,
    /// `/* … */` comment (nesting handled), may span lines.
    BlockComment,
    /// A single punctuation character (`.`, `[`, `!`, `:`, …).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// The inner content of a string literal: prefix (`r`, `b`, `br`,
    /// `c`…), hashes and quotes stripped. Returns the raw text for
    /// non-string tokens.
    pub fn string_content(&self) -> &str {
        if self.kind != TokenKind::Str {
            return &self.text;
        }
        let s = self.text.trim_start_matches(['r', 'b', 'c']);
        let s = s.trim_start_matches('#');
        let s = s.strip_prefix('"').unwrap_or(s);
        let s = s.trim_end_matches('#');
        s.strip_suffix('"').unwrap_or(s)
    }
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Unterminated literals and comments
/// are tolerated (the token simply runs to end of input): an auditor
/// must degrade gracefully on code that rustc would reject anyway.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let token = if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if c == '"' {
            lex_string(&mut cur, String::new())
        } else if c == '\'' {
            lex_quote(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else if is_ident_start(c) {
            lex_word(&mut cur)
        } else {
            let c = cur.bump().unwrap_or(' ');
            Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
                col,
            }
        };
        tokens.push(Token { line, col, ..token });
    }
    tokens
}

fn lex_line_comment(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token {
        kind: TokenKind::LineComment,
        text,
        line: 0,
        col: 0,
    }
}

fn lex_block_comment(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    Token {
        kind: TokenKind::BlockComment,
        text,
        line: 0,
        col: 0,
    }
}

/// Lexes a non-raw string body starting at the opening `"`; `prefix`
/// holds any literal prefix (`b`, `c`) already consumed.
fn lex_string(cur: &mut Cursor, prefix: String) -> Token {
    let mut text = prefix;
    text.push('"');
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
        } else if c == '"' {
            break;
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line: 0,
        col: 0,
    }
}

/// Lexes a raw string starting at the first `#` or `"` after the `r`
/// prefix (already consumed into `prefix`).
fn lex_raw_string(cur: &mut Cursor, prefix: String) -> Token {
    let mut text = prefix;
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        cur.bump();
    }
    if cur.peek(0) == Some('"') {
        text.push('"');
        cur.bump();
        'body: while let Some(c) = cur.bump() {
            text.push(c);
            if c == '"' {
                for ahead in 0..hashes {
                    if cur.peek(ahead) != Some('#') {
                        continue 'body;
                    }
                }
                for _ in 0..hashes {
                    text.push('#');
                    cur.bump();
                }
                break;
            }
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line: 0,
        col: 0,
    }
}

/// Disambiguates `'a` (lifetime) from `'a'` (char literal) at a `'`.
fn lex_quote(cur: &mut Cursor) -> Token {
    let next = cur.peek(1);
    let after = cur.peek(2);
    let is_lifetime =
        matches!(next, Some(c) if is_ident_start(c)) && after != Some('\'') && next != Some('\\');
    if is_lifetime {
        let mut text = String::from("'");
        cur.bump();
        while let Some(c) = cur.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            cur.bump();
        }
        return Token {
            kind: TokenKind::Lifetime,
            text,
            line: 0,
            col: 0,
        };
    }
    // Char literal: consume until the closing quote, honoring escapes.
    let mut text = String::from("'");
    cur.bump();
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
        } else if c == '\'' {
            break;
        }
    }
    Token {
        kind: TokenKind::Char,
        text,
        line: 0,
        col: 0,
    }
}

fn lex_number(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else if c == '.' && matches!(cur.peek(1), Some(d) if d.is_ascii_digit()) {
            // `1.5` continues the number; `0..n` does not.
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    Token {
        kind: TokenKind::Number,
        text,
        line: 0,
        col: 0,
    }
}

/// Lexes an identifier, or hands off to a string lexer when the word
/// turns out to be a literal prefix (`r"…"`, `b'…'`, `br#"…"#`, `r#raw`).
fn lex_word(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    match (text.as_str(), cur.peek(0)) {
        ("r" | "br" | "cr", Some('#')) => {
            // `r#"…"#` raw string, or `r#ident` raw identifier.
            let mut ahead = 0;
            while cur.peek(ahead) == Some('#') {
                ahead += 1;
            }
            if cur.peek(ahead) == Some('"') {
                return lex_raw_string(cur, text);
            }
            if text == "r" {
                cur.bump(); // the `#`
                let mut ident = String::from("r#");
                while let Some(c) = cur.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    ident.push(c);
                    cur.bump();
                }
                return Token {
                    kind: TokenKind::Ident,
                    text: ident,
                    line: 0,
                    col: 0,
                };
            }
        }
        ("r" | "br" | "cr", Some('"')) => return lex_raw_string(cur, text),
        ("b" | "c", Some('"')) => return lex_string(cur, text),
        ("b", Some('\'')) => {
            let mut tok = lex_quote(cur);
            tok.text = format!("b{}", tok.text);
            return tok;
        }
        _ => {}
    }
    Token {
        kind: TokenKind::Ident,
        text,
        line: 0,
        col: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let toks = lex("let x = a.unwrap();");
        assert!(toks[0].is_ident("let"));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].col, 1);
        let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.col, 11);
    }

    #[test]
    fn strings_hide_their_content() {
        let toks = kinds(r#"let s = "a.unwrap() // not code";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r##"let s = r#"quote " inside"#;"##);
        let s = toks.iter().find(|(k, _)| *k == TokenKind::Str).unwrap();
        assert!(s.1.contains("quote"));
        // Nothing after the raw string terminator leaked into it.
        assert!(toks.last().unwrap().1 == ";");
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds(r##"(b"bytes", c"cstr", br#"raw"#)"##);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 3);
    }

    #[test]
    fn string_content_strips_delimiters() {
        let toks = lex(r###"("plain", r#"raw {x}"#, b"bytes")"###);
        let contents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.string_content().to_string())
            .collect();
        assert_eq!(contents, ["plain", "raw {x}", "bytes"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; let u = '_'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert!(toks[2].1 == "b");
    }

    #[test]
    fn comments_keep_text_for_annotation_parsing() {
        let toks = lex("// audit: allow(panic, reason)\nx");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert!(toks[0].text.contains("audit: allow(panic, reason)"));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("for i in 0..10 { a[i]; } let f = 1.5e3;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "10"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "1.5e3"));
    }

    #[test]
    fn multiline_positions() {
        let toks = lex("a\n  b\n\tc");
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(toks[2].line, 3);
    }
}
