//! Rule 2 — **unsafe inventory**.
//!
//! The workspace is `deny(unsafe_code)` with two intrinsics carve-outs
//! in `crypto/src/backend.rs`. Every `unsafe` block or fn must carry a
//! `// SAFETY:` comment, and the per-file count is diffed against the
//! committed `AUDIT.json` baseline so new unsafe cannot land without a
//! reviewed `--fix-inventory` run.

use crate::rules::Finding;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Scans `file`, appending its `unsafe` count to `inventory` and
/// returning missing-SAFETY findings. Test code is *not* exempt:
/// unsafe is unsafe wherever it runs.
pub fn scan(file: &SourceFile, inventory: &mut BTreeMap<String, u32>) -> Vec<Finding> {
    let mut out = Vec::new();
    for tok in file.tokens.iter() {
        if !tok.is_ident("unsafe") {
            continue;
        }
        *inventory.entry(file.rel_path.clone()).or_insert(0) += 1;
        if !has_safety_comment(file, tok.line) {
            out.push(Finding::new(
                "unsafe-safety",
                &file.rel_path,
                tok.line,
                tok.col,
                "`unsafe` without a `// SAFETY:` comment on the preceding lines: state the \
                 invariant that makes this sound"
                    .to_string(),
            ));
        }
    }
    out
}

/// True when the line holding the `unsafe` token, or the contiguous run
/// of comment/attribute lines directly above it, contains `SAFETY:` (or
/// a rustdoc `# Safety` section). A blank line breaks the run: the
/// justification must visibly attach to the unsafe it justifies.
fn has_safety_comment(file: &SourceFile, line: u32) -> bool {
    let idx = (line as usize).saturating_sub(1);
    let mentions = |l: &str| l.contains("SAFETY:") || l.contains("# Safety");
    if file.lines.get(idx).is_some_and(|l| mentions(l)) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let Some(raw) = file.lines.get(i) else {
            break;
        };
        let t = raw.trim();
        let attaches =
            t.starts_with("//") || t.starts_with("/*") || t.starts_with('*') || t.starts_with("#[");
        if !attaches {
            break;
        }
        if mentions(t) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_src(src: &str) -> (Vec<Finding>, BTreeMap<String, u32>) {
        let file = SourceFile::parse("crates/crypto/src/backend.rs", src);
        let mut inv = BTreeMap::new();
        let findings = scan(&file, &mut inv);
        (findings, inv)
    }

    #[test]
    fn counts_blocks_and_fns() {
        let (_, inv) =
            scan_src("unsafe fn raw() {}\nfn f() {\n  // SAFETY: checked\n  unsafe { raw() }\n}\n");
        assert_eq!(inv["crates/crypto/src/backend.rs"], 2);
    }

    #[test]
    fn safety_comment_directly_above_passes() {
        let (findings, _) =
            scan_src("// SAFETY: feature checked at construction\nunsafe fn f() {}\n");
        assert!(findings.is_empty());
    }

    #[test]
    fn safety_comment_through_attributes_passes() {
        let (findings, _) = scan_src(
            "// SAFETY: caller proved the `aes` feature\n#[target_feature(enable = \"aes\")]\nunsafe fn f() {}\n",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn same_line_safety_passes() {
        let (findings, _) = scan_src("let x = unsafe { get() }; // SAFETY: index bounded above\n");
        assert!(findings.is_empty());
    }

    #[test]
    fn missing_safety_is_flagged() {
        let (findings, _) = scan_src("fn f() {\n  unsafe { raw() }\n}\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unsafe-safety");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn blank_line_breaks_the_attachment() {
        let (findings, _) = scan_src("// SAFETY: too far away\n\nunsafe fn f() {}\n");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn unsafe_in_strings_attrs_and_comments_not_counted() {
        let (findings, inv) = scan_src(
            "#![deny(unsafe_code)]\n// unsafe is discussed here\nfn f() { let s = \"unsafe\"; }\n",
        );
        assert!(findings.is_empty());
        assert!(inv.is_empty());
    }
}
