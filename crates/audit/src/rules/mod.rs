//! The project-specific rules and their shared vocabulary.
//!
//! Each rule is a pure function from lexed [`crate::source::SourceFile`]s to a list
//! of [`Finding`]s; suppression (annotations, baselines) happens
//! centrally in [`crate::run_audit`] so every rule stays trivially
//! testable. Most rules are per-file; `locks` is a workspace pass
//! because lock-order inversions cross function and file boundaries.

pub mod atomics;
pub mod locks;
pub mod no_panic;
pub mod poll;
pub mod secrets;
pub mod unsafe_code;

/// How the no-panic policy applies to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// `toleo-core`, `crypto`, `baselines` library code: the crates the
    /// security argument lives in. Panics *and* slice indexing are
    /// findings; `allow-file(panic, …)` is not honored here.
    Policy,
    /// Everything else scanned (bench harness, workloads, sim, this
    /// crate): panics are findings but may be excused file-wide, and
    /// indexing is not checked.
    Other,
    /// Test code (`tests/` directories): exempt from panic and secret
    /// policies — tests are supposed to assert and unwrap.
    Test,
}

/// The crates whose non-test code carries the paper's security
/// invariants. Order matters nowhere; paths are repo-relative.
pub const POLICY_PREFIXES: [&str; 3] = [
    "crates/toleo-core/src/",
    "crates/crypto/src/",
    "crates/baselines/src/",
];

/// Classifies a repo-relative path.
pub fn tier(rel_path: &str) -> Tier {
    if rel_path.split('/').any(|c| c == "tests") {
        return Tier::Test;
    }
    if POLICY_PREFIXES.iter().any(|p| rel_path.starts_with(p)) {
        return Tier::Policy;
    }
    Tier::Other
}

/// One diagnostic. `allow_rules` lists the annotation rules that may
/// suppress it (empty = not suppressible by annotation).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (`no-panic`, `unsafe-safety`, `unsafe-inventory`,
    /// `atomic-protocol`, `lock-discipline`, `blocking-in-poll`,
    /// `secret-hygiene`, `annotation`, `allow-baseline`,
    /// `baseline-schema`).
    pub rule: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line (0 for whole-file findings).
    pub line: u32,
    /// 1-based column (0 when not meaningful).
    pub col: u32,
    /// Human-readable description.
    pub message: String,
    /// Annotation rules that may excuse this finding.
    pub allow_rules: &'static [&'static str],
}

impl Finding {
    pub fn new(rule: &'static str, file: &str, line: u32, col: u32, message: String) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            col,
            message,
            allow_rules: &[],
        }
    }

    pub fn allowed_by(mut self, rules: &'static [&'static str]) -> Finding {
        self.allow_rules = rules;
        self
    }
}

/// Reserved words that cannot be an indexable expression, so `kw[`
/// is a type or pattern position, not a slice index.
pub const KEYWORDS: [&str; 35] = [
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe", "use",
    "where",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_classification() {
        assert_eq!(tier("crates/toleo-core/src/engine.rs"), Tier::Policy);
        assert_eq!(tier("crates/crypto/src/backend.rs"), Tier::Policy);
        assert_eq!(tier("crates/baselines/src/vault.rs"), Tier::Policy);
        assert_eq!(tier("crates/bench/src/bin/throughput.rs"), Tier::Other);
        assert_eq!(tier("crates/bench/benches/engine.rs"), Tier::Other);
        assert_eq!(tier("src/lib.rs"), Tier::Other);
        assert_eq!(tier("tests/security.rs"), Tier::Test);
        assert_eq!(tier("crates/crypto/tests/proptests.rs"), Tier::Test);
    }
}
