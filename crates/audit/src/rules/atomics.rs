//! Rule 3 — **atomic-protocol policy**.
//!
//! The quarantine/recovery handshake coordinates lock-free state —
//! quarantine bitmap word, quarantine epoch, the world-kill flag,
//! telemetry counters — whose memory orderings are load-bearing: a
//! `Relaxed` store on the epoch would pass every test on x86 and
//! silently break the detection-latency bound on ARM. `AUDIT.json`
//! therefore declares a *protocol table*: every atomic names its role
//! (`flag` / `epoch` / `counter` / `guard` / `cache`) and the orderings
//! it permits per operation kind (load / store / rmw). This rule checks
//! every `Ordering::X` call site against the declared row, flags
//! undeclared atomics, and validates the table itself against each
//! role's legality rules (Release-store ↔ Acquire-load pairing; no
//! `Relaxed` on synchronizing roles).

use crate::lexer::TokenKind;
use crate::rules::{Finding, Tier};
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// `std::sync::atomic::Ordering` variants. `std::cmp::Ordering`'s
/// `Less`/`Equal`/`Greater` deliberately don't match.
pub const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Methods that take an `Ordering`; used to walk from an `Ordering::X`
/// token back to the atomic it orders.
const ATOMIC_METHODS: [&str; 15] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

/// How far (in code tokens) the receiver search walks back from an
/// `Ordering::` use before giving up.
const SEARCH_WINDOW: usize = 48;

/// What an atomic operation does to memory, for protocol purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Load,
    Store,
    Rmw,
}

impl OpKind {
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::Rmw => "rmw",
        }
    }
}

/// The declared role of an atomic in the concurrency protocol. Roles
/// bound which orderings a row may even declare: synchronizing roles
/// (`flag`, `epoch`, `guard`) publish or observe other state and may
/// never be `Relaxed`; `counter` and `cache` carry no happens-before
/// obligations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A latching decision bit other threads act on (world-kill flag).
    Flag,
    /// A monotonic change counter pollers watch (quarantine epoch).
    Epoch,
    /// Pure telemetry; no decision hangs on its ordering.
    Counter,
    /// Guards other data: its store publishes state a reader then
    /// dereferences (quarantine word, recovery generation, lost count).
    Guard,
    /// A write-once idempotent cache (detected crypto backend).
    Cache,
}

impl Role {
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "flag" => Some(Role::Flag),
            "epoch" => Some(Role::Epoch),
            "counter" => Some(Role::Counter),
            "guard" => Some(Role::Guard),
            "cache" => Some(Role::Cache),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Role::Flag => "flag",
            Role::Epoch => "epoch",
            Role::Counter => "counter",
            Role::Guard => "guard",
            Role::Cache => "cache",
        }
    }

    /// Orderings this role may declare for `kind`; `None` means the
    /// role is unconstrained (counters and caches).
    fn legal(self, kind: OpKind) -> Option<&'static [&'static str]> {
        match self {
            Role::Counter | Role::Cache => None,
            Role::Flag | Role::Epoch | Role::Guard => Some(match kind {
                OpKind::Load => &["Acquire", "SeqCst"],
                OpKind::Store => &["Release", "SeqCst"],
                OpKind::Rmw => &["Release", "AcqRel", "SeqCst"],
            }),
        }
    }
}

/// One protocol table row: the atomic's role and its permitted
/// orderings per operation kind. An empty list forbids that kind.
#[derive(Debug, Clone)]
pub struct AtomicPolicy {
    pub atomic: String,
    pub role: Role,
    pub load: Vec<String>,
    pub store: Vec<String>,
    pub rmw: Vec<String>,
}

impl AtomicPolicy {
    fn permitted(&self, kind: OpKind) -> &[String] {
        match kind {
            OpKind::Load => &self.load,
            OpKind::Store => &self.store,
            OpKind::Rmw => &self.rmw,
        }
    }
}

/// Validates the protocol table itself: every declared ordering must be
/// a real `Ordering` variant and legal for the row's role. Run once per
/// audit; findings anchor to `AUDIT.json`.
pub fn validate_policy(policy: &[AtomicPolicy]) -> Vec<Finding> {
    let mut out = Vec::new();
    for row in policy {
        for kind in [OpKind::Load, OpKind::Store, OpKind::Rmw] {
            for o in row.permitted(kind) {
                if !ORDERINGS.contains(&o.as_str()) {
                    out.push(Finding::new(
                        "atomic-protocol",
                        "AUDIT.json",
                        0,
                        0,
                        format!(
                            "protocol row `{}` lists unknown ordering `{o}` for {}s",
                            row.atomic,
                            kind.as_str()
                        ),
                    ));
                    continue;
                }
                if let Some(legal) = row.role.legal(kind) {
                    if !legal.contains(&o.as_str()) {
                        out.push(Finding::new(
                            "atomic-protocol",
                            "AUDIT.json",
                            0,
                            0,
                            format!(
                                "protocol row `{}` has role `{}` but permits `Ordering::{o}` \
                                 for {}s; `{}` roles synchronize and allow only [{}] there \
                                 (Release store ↔ Acquire load, never Relaxed)",
                                row.atomic,
                                row.role.as_str(),
                                kind.as_str(),
                                row.role.as_str(),
                                legal.join(", ")
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Scans `file` for `Ordering::X` uses, checking each against the
/// protocol table. Names of rows that matched are added to `used` so
/// stale table rows can be reported at the end of the run.
pub fn scan(
    file: &SourceFile,
    tier: Tier,
    policy: &[AtomicPolicy],
    used: &mut BTreeSet<String>,
) -> Vec<Finding> {
    if tier == Tier::Test {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, tok) in file.tokens.iter().enumerate() {
        if !tok.is_ident("Ordering") || file.in_test_region(i) {
            continue;
        }
        let path_sep = file.next_code_token(i + 1).is_some_and(|(j, t)| {
            t.is_punct(':')
                && file
                    .next_code_token(j + 1)
                    .is_some_and(|(_, t2)| t2.is_punct(':'))
        });
        if !path_sep {
            continue; // `use …::Ordering;` import or a bare mention
        }
        let Some(ordering) = ordering_name(file, i) else {
            continue; // `Ordering::Less` etc.
        };
        let Some(site) = attribute(file, i) else {
            out.push(Finding::new(
                "atomic-protocol",
                &file.rel_path,
                tok.line,
                tok.col,
                format!(
                    "`Ordering::{ordering}` could not be attributed to an atomic operation: \
                     keep orderings at the call site of load/store/rmw methods"
                ),
            ));
            continue;
        };
        let kind = site.kind;
        match policy.iter().find(|p| p.atomic == site.receiver) {
            None => out.push(Finding::new(
                "atomic-protocol",
                &file.rel_path,
                tok.line,
                tok.col,
                format!(
                    "atomic `{}` is not declared in AUDIT.json's protocol table: add a row \
                     naming its role and permitted load/store/rmw orderings",
                    site.receiver
                ),
            )),
            Some(entry) => {
                used.insert(site.receiver.clone());
                let permitted = entry.permitted(kind);
                if permitted.is_empty() {
                    out.push(Finding::new(
                        "atomic-protocol",
                        &file.rel_path,
                        tok.line,
                        tok.col,
                        format!(
                            "`{}` declares no {} orderings in AUDIT.json but `{}` performs \
                             one: extend the protocol row or remove the operation",
                            site.receiver,
                            kind.as_str(),
                            site.method
                        ),
                    ));
                } else if !permitted.iter().any(|o| o == ordering) {
                    out.push(Finding::new(
                        "atomic-protocol",
                        &file.rel_path,
                        tok.line,
                        tok.col,
                        format!(
                            "`{}` {} uses `Ordering::{ordering}` but its `{}` protocol row \
                             permits [{}]: fix the call site or re-justify the row",
                            site.receiver,
                            kind.as_str(),
                            entry.role.as_str(),
                            permitted.join(", ")
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// The `X` of `Ordering::X` at token `i`, if it is an atomic ordering.
fn ordering_name(file: &SourceFile, i: usize) -> Option<&str> {
    let (j, colon1) = file.next_code_token(i + 1)?;
    if !colon1.is_punct(':') {
        return None;
    }
    let (k, colon2) = file.next_code_token(j + 1)?;
    if !colon2.is_punct(':') {
        return None;
    }
    let (_, name) = file.next_code_token(k + 1)?;
    ORDERINGS.iter().find(|o| name.is_ident(o)).copied()
}

/// An attributed `Ordering` use: the atomic's final path/field segment,
/// the method called on it, and the protocol kind of *this* ordering
/// argument (the failure ordering of `compare_exchange` and the fetch
/// ordering of `fetch_update` are loads).
struct Site {
    receiver: String,
    method: String,
    kind: OpKind,
}

/// Walks back from the `Ordering` token to find `<receiver>.<method>(`.
fn attribute(file: &SourceFile, ordering_idx: usize) -> Option<Site> {
    let mut walked = 0usize;
    let mut idx = ordering_idx;
    while walked < SEARCH_WINDOW {
        let (prev_idx, prev) = file.prev_code_token(idx)?;
        if prev.kind == TokenKind::Ident && ATOMIC_METHODS.contains(&prev.text.as_str()) {
            let open = file.next_code_token(prev_idx + 1);
            let (dot_idx, dot) = file.prev_code_token(prev_idx)?;
            if let Some((open_idx, t)) = open {
                if t.is_punct('(') && dot.is_punct('.') {
                    let (_, recv) = file.prev_code_token(dot_idx)?;
                    if recv.kind == TokenKind::Ident {
                        let arg = arg_index(file, open_idx, ordering_idx);
                        return Some(Site {
                            receiver: recv.text.clone(),
                            method: prev.text.clone(),
                            kind: kind_of(&prev.text, arg),
                        });
                    }
                }
            }
        }
        idx = prev_idx;
        walked += 1;
    }
    None
}

/// Zero-based argument position of the token at `at` within the call
/// whose opening paren is at `open_idx` (top-level commas only).
fn arg_index(file: &SourceFile, open_idx: usize, at: usize) -> usize {
    let mut depth = 0i32;
    let mut arg = 0usize;
    for tok in file.tokens.iter().take(at).skip(open_idx + 1) {
        if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('}') {
            depth -= 1;
        } else if tok.is_punct(',') && depth == 0 {
            arg += 1;
        }
    }
    arg
}

/// The protocol kind of the ordering in argument position `arg` of
/// `method`: dual-ordering methods take a load (failure/fetch) ordering
/// in their final position.
fn kind_of(method: &str, arg: usize) -> OpKind {
    match method {
        "load" => OpKind::Load,
        "store" => OpKind::Store,
        "compare_exchange" | "compare_exchange_weak" => {
            if arg >= 3 {
                OpKind::Load
            } else {
                OpKind::Rmw
            }
        }
        "fetch_update" => {
            if arg == 1 {
                OpKind::Load
            } else {
                OpKind::Rmw
            }
        }
        _ => OpKind::Rmw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type PolicyRow<'a> = (&'a str, Role, &'a [&'a str], &'a [&'a str], &'a [&'a str]);

    fn policy(entries: &[PolicyRow]) -> Vec<AtomicPolicy> {
        entries
            .iter()
            .map(|(a, role, load, store, rmw)| AtomicPolicy {
                atomic: a.to_string(),
                role: *role,
                load: load.iter().map(|s| s.to_string()).collect(),
                store: store.iter().map(|s| s.to_string()).collect(),
                rmw: rmw.iter().map(|s| s.to_string()).collect(),
            })
            .collect()
    }

    fn scan_src(src: &str, pol: &[AtomicPolicy]) -> (Vec<Finding>, BTreeSet<String>) {
        let file = SourceFile::parse("crates/toleo-core/src/sharded.rs", src);
        let mut used = BTreeSet::new();
        let findings = scan(&file, Tier::Policy, pol, &mut used);
        (findings, used)
    }

    #[test]
    fn documented_matching_use_is_clean() {
        let pol = policy(&[(
            "killed",
            Role::Flag,
            &["Acquire"],
            &["Release", "SeqCst"],
            &[],
        )]);
        let (findings, used) = scan_src(
            "fn k(&self) { self.killed.store(true, Ordering::SeqCst); }",
            &pol,
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert!(used.contains("killed"));
    }

    #[test]
    fn mispaired_ordering_is_flagged() {
        let pol = policy(&[("killed", Role::Flag, &["Acquire"], &["Release"], &[])]);
        let (findings, _) = scan_src(
            "fn k(&self) -> bool { self.killed.load(Ordering::Relaxed) }",
            &pol,
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("permits [Acquire]"));
        assert!(findings[0].message.contains("`flag` protocol row"));
    }

    #[test]
    fn undeclared_op_kind_is_flagged() {
        let pol = policy(&[("killed", Role::Flag, &["Acquire"], &["Release"], &[])]);
        let (findings, _) = scan_src(
            "fn k(&self) { self.killed.swap(true, Ordering::AcqRel); }",
            &pol,
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("declares no rmw orderings"));
    }

    #[test]
    fn undocumented_atomic_is_flagged() {
        let (findings, _) = scan_src("fn f() { FLAG.store(1, Ordering::SeqCst); }", &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("not declared"));
    }

    #[test]
    fn compare_exchange_failure_ordering_is_a_load() {
        let pol = policy(&[("state", Role::Guard, &["Acquire"], &[], &["AcqRel"])]);
        let (ok, _) = scan_src(
            "fn f() { state.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).ok(); }",
            &pol,
        );
        assert!(ok.is_empty(), "{ok:?}");
        let (bad, _) = scan_src(
            "fn f() { state.compare_exchange(0, 1, Ordering::Acquire, Ordering::Acquire).ok(); }",
            &pol,
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].message.contains("rmw"));
    }

    #[test]
    fn cmp_ordering_is_ignored() {
        let (findings, _) = scan_src(
            "fn f(a: u8, b: u8) { if a.cmp(&b) == Ordering::Less {} }",
            &[],
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn import_line_is_ignored() {
        let (findings, _) = scan_src("use std::sync::atomic::{AtomicBool, Ordering};", &[]);
        assert!(findings.is_empty());
    }

    #[test]
    fn ordering_without_call_site_is_flagged() {
        let (findings, _) = scan_src("fn f() { let o = Ordering::SeqCst; }", &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("could not be attributed"));
    }

    #[test]
    fn field_chains_resolve_to_final_segment() {
        let pol = policy(&[("killed", Role::Flag, &["SeqCst"], &[], &[])]);
        let (findings, used) = scan_src(
            "fn f(&self, i: usize) { self.shards[i].killed.load(Ordering::SeqCst); }",
            &pol,
        );
        assert!(findings.is_empty());
        assert!(used.contains("killed"));
    }

    #[test]
    fn relaxed_on_synchronizing_role_fails_table_validation() {
        let pol = policy(&[("epoch", Role::Epoch, &["Relaxed"], &["Release"], &[])]);
        let findings = validate_policy(&pol);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("never Relaxed"));
    }

    #[test]
    fn counter_role_may_declare_relaxed() {
        let pol = policy(&[("ops_served", Role::Counter, &["Relaxed"], &[], &["Relaxed"])]);
        assert!(validate_policy(&pol).is_empty());
        let (findings, _) = scan_src(
            "fn f(&self) { self.ops_served.fetch_add(1, Ordering::Relaxed); }",
            &pol,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn unknown_ordering_in_table_is_flagged() {
        let pol = policy(&[("x", Role::Counter, &["Sequential"], &[], &[])]);
        let findings = validate_policy(&pol);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unknown ordering"));
    }
}
