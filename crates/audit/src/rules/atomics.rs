//! Rule 3 — **atomic-ordering policy**.
//!
//! The cross-shard kill flag and the crypto backend tag are the only
//! lock-free shared state in the workspace, and their memory orderings
//! are load-bearing: the kill flag must be `SeqCst` so a tamper verdict
//! is totally ordered with the stats freeze it triggers, while the
//! backend tag tolerates `Relaxed` because it is an idempotent cache.
//! Every `Ordering::X` use must therefore match the policy table in
//! `AUDIT.json`, keyed by the atomic's name — an undocumented atomic or
//! a changed ordering is a finding, not a silent merge.

use crate::lexer::TokenKind;
use crate::rules::{Finding, Tier};
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// `std::sync::atomic::Ordering` variants. `std::cmp::Ordering`'s
/// `Less`/`Equal`/`Greater` deliberately don't match.
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Methods that take an `Ordering`; used to walk from an `Ordering::X`
/// token back to the atomic it orders.
const ATOMIC_METHODS: [&str; 13] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
];

/// How far (in code tokens) the receiver search walks back from an
/// `Ordering::` use before giving up.
const SEARCH_WINDOW: usize = 48;

/// One documented atomic: its name and permitted orderings.
#[derive(Debug, Clone)]
pub struct AtomicPolicy {
    pub atomic: String,
    pub orderings: Vec<String>,
}

/// Scans `file` for `Ordering::X` uses, checking each against `policy`.
/// Names of policy entries that matched are added to `used` so stale
/// table rows can be reported at the end of the run.
pub fn scan(
    file: &SourceFile,
    tier: Tier,
    policy: &[AtomicPolicy],
    used: &mut BTreeSet<String>,
) -> Vec<Finding> {
    if tier == Tier::Test {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, tok) in file.tokens.iter().enumerate() {
        if !tok.is_ident("Ordering") || file.in_test_region(i) {
            continue;
        }
        let path_sep = file.next_code_token(i + 1).is_some_and(|(j, t)| {
            t.is_punct(':')
                && file
                    .next_code_token(j + 1)
                    .is_some_and(|(_, t2)| t2.is_punct(':'))
        });
        if !path_sep {
            continue; // `use …::Ordering;` import or a bare mention
        }
        let Some(ordering) = ordering_name(file, i) else {
            continue; // `Ordering::Less` etc.
        };
        match receiver_of(file, i) {
            None => out.push(Finding::new(
                "atomic-ordering",
                &file.rel_path,
                tok.line,
                tok.col,
                format!(
                    "`Ordering::{ordering}` could not be attributed to an atomic operation: \
                     keep orderings at the call site of load/store/rmw methods"
                ),
            )),
            Some(receiver) => match policy.iter().find(|p| p.atomic == receiver) {
                None => out.push(Finding::new(
                    "atomic-ordering",
                    &file.rel_path,
                    tok.line,
                    tok.col,
                    format!(
                        "atomic `{receiver}` is not documented in AUDIT.json: add a policy \
                             entry naming its permitted orderings and why they are sound"
                    ),
                )),
                Some(entry) => {
                    used.insert(receiver.clone());
                    if !entry.orderings.iter().any(|o| o == ordering) {
                        out.push(Finding::new(
                            "atomic-ordering",
                            &file.rel_path,
                            tok.line,
                            tok.col,
                            format!(
                                "`{receiver}` used with `Ordering::{ordering}` but AUDIT.json \
                                     permits only [{}]: fix the call or re-justify the policy",
                                entry.orderings.join(", ")
                            ),
                        ));
                    }
                }
            },
        }
    }
    out
}

/// The `X` of `Ordering::X` at token `i`, if it is an atomic ordering.
fn ordering_name(file: &SourceFile, i: usize) -> Option<&str> {
    let (j, colon1) = file.next_code_token(i + 1)?;
    if !colon1.is_punct(':') {
        return None;
    }
    let (k, colon2) = file.next_code_token(j + 1)?;
    if !colon2.is_punct(':') {
        return None;
    }
    let (_, name) = file.next_code_token(k + 1)?;
    ORDERINGS.iter().find(|o| name.is_ident(o)).copied()
}

/// Walks back from the `Ordering` token to find `<receiver>.<method>(`,
/// returning the receiver's final path/field segment (`killed`,
/// `DEFAULT_BACKEND`).
fn receiver_of(file: &SourceFile, ordering_idx: usize) -> Option<String> {
    let mut walked = 0usize;
    let mut idx = ordering_idx;
    while walked < SEARCH_WINDOW {
        let (prev_idx, prev) = file.prev_code_token(idx)?;
        if prev.kind == TokenKind::Ident && ATOMIC_METHODS.contains(&prev.text.as_str()) {
            let called = file
                .next_code_token(prev_idx + 1)
                .is_some_and(|(_, t)| t.is_punct('('));
            let (dot_idx, dot) = file.prev_code_token(prev_idx)?;
            if called && dot.is_punct('.') {
                let (_, recv) = file.prev_code_token(dot_idx)?;
                if recv.kind == TokenKind::Ident {
                    return Some(recv.text.clone());
                }
            }
        }
        idx = prev_idx;
        walked += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(entries: &[(&str, &[&str])]) -> Vec<AtomicPolicy> {
        entries
            .iter()
            .map(|(a, os)| AtomicPolicy {
                atomic: a.to_string(),
                orderings: os.iter().map(|s| s.to_string()).collect(),
            })
            .collect()
    }

    fn scan_src(src: &str, pol: &[AtomicPolicy]) -> (Vec<Finding>, BTreeSet<String>) {
        let file = SourceFile::parse("crates/toleo-core/src/sharded.rs", src);
        let mut used = BTreeSet::new();
        let findings = scan(&file, Tier::Policy, pol, &mut used);
        (findings, used)
    }

    #[test]
    fn documented_matching_use_is_clean() {
        let pol = policy(&[("killed", &["SeqCst"])]);
        let (findings, used) = scan_src(
            "fn k(&self) { self.killed.store(true, Ordering::SeqCst); }",
            &pol,
        );
        assert!(findings.is_empty());
        assert!(used.contains("killed"));
    }

    #[test]
    fn wrong_ordering_is_flagged() {
        let pol = policy(&[("killed", &["SeqCst"])]);
        let (findings, _) = scan_src(
            "fn k(&self) -> bool { self.killed.load(Ordering::Relaxed) }",
            &pol,
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("permits only [SeqCst]"));
    }

    #[test]
    fn undocumented_atomic_is_flagged() {
        let (findings, _) = scan_src("fn f() { FLAG.store(1, Ordering::SeqCst); }", &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("not documented"));
    }

    #[test]
    fn compare_exchange_checks_both_orderings() {
        let pol = policy(&[("state", &["AcqRel", "Acquire"])]);
        let (ok, _) = scan_src(
            "fn f() { state.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).ok(); }",
            &pol,
        );
        assert!(ok.is_empty());
        let (bad, _) = scan_src(
            "fn f() { state.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed).ok(); }",
            &pol,
        );
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn cmp_ordering_is_ignored() {
        let (findings, _) = scan_src(
            "fn f(a: u8, b: u8) { if a.cmp(&b) == Ordering::Less {} }",
            &[],
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn import_line_is_ignored() {
        let (findings, _) = scan_src("use std::sync::atomic::{AtomicBool, Ordering};", &[]);
        assert!(findings.is_empty());
    }

    #[test]
    fn ordering_without_call_site_is_flagged() {
        let (findings, _) = scan_src("fn f() { let o = Ordering::SeqCst; }", &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("could not be attributed"));
    }

    #[test]
    fn field_chains_resolve_to_final_segment() {
        let pol = policy(&[("killed", &["SeqCst"])]);
        let (findings, used) = scan_src(
            "fn f(&self, i: usize) { self.shards[i].killed.load(Ordering::SeqCst); }",
            &pol,
        );
        assert!(findings.is_empty());
        assert!(used.contains("killed"));
    }
}
