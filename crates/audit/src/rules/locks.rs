//! Rule 5 — **lock discipline**.
//!
//! The sharded engine nests three mutex classes — shard engine locks,
//! the per-shard lost-block ledgers, and the recovery totals — and the
//! recovery handshake only stays deadlock-free because they are always
//! acquired in that order and the leaf critical sections stay tiny.
//! `AUDIT.json` declares the classes (in outermost-first order), the
//! identifiers that acquire each, and the calls forbidden while one is
//! held. This rule lexically tracks guard lifetimes per function
//! (let-bound guards live to the end of their block or an explicit
//! `drop`; temporaries to the end of their statement), propagates
//! which classes each named function acquires through `self.…`, path
//! and bare calls (to a fixpoint), and reports:
//!
//! - lock-order inversions, direct or via a call — including
//!   same-class re-entry, which self-deadlocks;
//! - forbidden calls (escalation, recovery, panics, I/O) inside a held
//!   critical section;
//! - `.lock()` on a receiver no class declares — every mutex must be
//!   classified.
//!
//! The tracking is lexical and deliberately conservative in the
//! *under*-held direction (a `match` on a guard temporary is treated
//! as statement-scoped), so it can miss, but a finding is real.
//! Findings accept `// audit: allow(lock, reason)`.

use crate::lexer::TokenKind;
use crate::rules::Finding;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One declared mutex class. Order in the table is lock order:
/// a class may only be acquired while holding strictly earlier ones.
#[derive(Debug, Clone)]
pub struct LockClass {
    pub class: String,
    /// Identifiers that acquire the class: helper-function names
    /// (`lock_shard`) and `.lock()` receiver fields (`shards`).
    pub acquire: Vec<String>,
    /// Identifiers that must not be called while the class is held.
    pub forbid: Vec<String>,
    pub why: String,
}

/// A named function's token-range body within one file.
struct FnBody {
    file: usize,
    name: String,
    /// Token indices of the body's `{` and matching `}`.
    body: (usize, usize),
}

/// A held lock at a point in the walk.
struct Held {
    class: usize,
    binding: Option<String>,
    /// Brace depth at acquisition (body `{` = depth 1).
    depth: i32,
    /// Paren depth at acquisition, for statement-scoped release.
    paren: i32,
    /// Temporary guard: released at the end of its statement.
    stmt: bool,
    line: u32,
}

/// Scans `files` (policy tier) against the declared lock classes.
/// Class names that matched an acquisition are added to `used` so
/// stale table rows can be reported at the end of the run.
pub fn scan_workspace(
    files: &[&SourceFile],
    classes: &[LockClass],
    used: &mut BTreeSet<String>,
) -> Vec<Finding> {
    let fns = collect_fns(files);

    // Pass 1: per-function direct acquisitions and eligible call edges.
    let mut direct: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in &fns {
        let mut w = Walk::new(files[f.file], classes, None, used);
        w.run(f, &fns);
        direct.entry(f.name.clone()).or_default().extend(w.direct);
        edges.entry(f.name.clone()).or_default().extend(w.calls);
    }

    // Fixpoint: a function acquires what its callees acquire.
    let mut summary = direct;
    loop {
        let mut changed = false;
        let snapshot = summary.clone();
        for (name, callees) in &edges {
            let entry = summary.entry(name.clone()).or_default();
            let before = entry.len();
            for callee in callees {
                if let Some(acquired) = snapshot.get(callee) {
                    entry.extend(acquired.iter().copied());
                }
            }
            changed |= entry.len() != before;
        }
        if !changed {
            break;
        }
    }

    // Pass 2: report with summaries in hand.
    let mut findings = Vec::new();
    for f in &fns {
        let mut w = Walk::new(files[f.file], classes, Some(&summary), used);
        w.run(f, &fns);
        findings.append(&mut w.findings);
    }
    findings
}

/// Every named `fn` body (with a brace-matched range) outside test
/// regions, across all files.
fn collect_fns(files: &[&SourceFile]) -> Vec<FnBody> {
    let mut out = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for i in 0..file.tokens.len() {
            if !file.tokens[i].is_ident("fn") || file.in_test_region(i) {
                continue;
            }
            let Some((ni, name)) = file.next_code_token(i + 1) else {
                continue;
            };
            if name.kind != TokenKind::Ident {
                continue; // `fn(usize)` pointer type
            }
            if let Some(start) = body_open(file, ni + 1) {
                if let Some(end) = match_brace(file, start) {
                    out.push(FnBody {
                        file: fi,
                        name: name.text.clone(),
                        body: (start, end),
                    });
                }
            }
        }
    }
    out
}

/// The index of the body `{` of a fn whose signature starts after
/// `from`, or `None` for a bodyless declaration.
fn body_open(file: &SourceFile, from: usize) -> Option<usize> {
    let mut paren = 0i32;
    for j in from..file.tokens.len() {
        let t = &file.tokens[j];
        if t.is_comment() {
            continue;
        }
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if paren == 0 && t.is_punct(';') {
            return None;
        } else if paren == 0 && t.is_punct('{') {
            return Some(j);
        }
    }
    None
}

/// The matching `}` for the `{` at `open`.
fn match_brace(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in file.tokens.iter().enumerate().skip(open) {
        if t.is_comment() {
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

struct Walk<'a> {
    file: &'a SourceFile,
    classes: &'a [LockClass],
    /// `Some` on the report pass, `None` on the collect pass.
    summaries: Option<&'a BTreeMap<String, BTreeSet<usize>>>,
    used: &'a mut BTreeSet<String>,
    direct: BTreeSet<usize>,
    calls: BTreeSet<String>,
    findings: Vec<Finding>,
}

impl<'a> Walk<'a> {
    fn new(
        file: &'a SourceFile,
        classes: &'a [LockClass],
        summaries: Option<&'a BTreeMap<String, BTreeSet<usize>>>,
        used: &'a mut BTreeSet<String>,
    ) -> Walk<'a> {
        Walk {
            file,
            classes,
            summaries,
            used,
            direct: BTreeSet::new(),
            calls: BTreeSet::new(),
            findings: Vec::new(),
        }
    }

    fn order(&self) -> String {
        self.classes
            .iter()
            .map(|c| c.class.as_str())
            .collect::<Vec<_>>()
            .join(" < ")
    }

    fn run(&mut self, f: &FnBody, all: &[FnBody]) {
        // Nested named fns are walked as their own entries.
        let nested: Vec<(usize, usize)> = all
            .iter()
            .filter(|g| g.file == f.file && g.body.0 > f.body.0 && g.body.1 < f.body.1)
            .map(|g| g.body)
            .collect();
        let mut depth = 0i32;
        let mut paren = 0i32;
        let mut held: Vec<Held> = Vec::new();
        let mut j = f.body.0;
        while j <= f.body.1 {
            if let Some(&(_, end)) = nested.iter().find(|&&(s, _)| s == j) {
                j = end + 1;
                continue;
            }
            let t = &self.file.tokens[j];
            if t.is_comment() {
                j += 1;
                continue;
            }
            if t.is_punct('{') {
                held.retain(|h| !(h.stmt && h.depth == depth && h.paren >= paren));
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
            } else if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct(';') {
                held.retain(|h| !(h.stmt && h.depth == depth && h.paren >= paren));
            } else if t.kind == TokenKind::Ident {
                j = self.ident(j, depth, paren, &mut held);
                continue;
            }
            j += 1;
        }
    }

    /// Handles the ident at `j`; returns the next token index to visit.
    fn ident(&mut self, j: usize, depth: i32, paren: i32, held: &mut Vec<Held>) -> usize {
        let t = &self.file.tokens[j];
        let after_fn = self
            .file
            .prev_code_token(j)
            .is_some_and(|(_, p)| p.is_ident("fn"));
        if after_fn {
            return j + 1;
        }
        let next = self.file.next_code_token(j + 1);
        let is_call = next.is_some_and(|(_, n)| n.is_punct('('));
        let is_macro = next.is_some_and(|(ni, n)| {
            n.is_punct('!')
                && self
                    .file
                    .next_code_token(ni + 1)
                    .is_some_and(|(_, n2)| n2.is_punct('(') || n2.is_punct('[') || n2.is_punct('{'))
        });
        if !is_call && !is_macro {
            return j + 1;
        }

        // `drop(guard)` releases a let-bound guard early.
        if t.is_ident("drop") && is_call {
            if let Some((oi, _)) = next {
                if let Some((ai, arg)) = self.file.next_code_token(oi + 1) {
                    let closes = self
                        .file
                        .next_code_token(ai + 1)
                        .is_some_and(|(_, c)| c.is_punct(')'));
                    if arg.kind == TokenKind::Ident && closes {
                        let name = arg.text.clone();
                        held.retain(|h| h.binding.as_deref() != Some(name.as_str()));
                        return j + 1; // let the walk balance the parens
                    }
                }
            }
        }

        // Acquisition?
        if is_call {
            if let Some(class) = self.acquisition_class(j, t) {
                self.used.insert(self.classes[class].class.clone());
                self.direct.insert(class);
                if self.summaries.is_some() {
                    for h in held.iter() {
                        if class <= h.class {
                            self.findings.push(
                                Finding::new(
                                    "lock-discipline",
                                    &self.file.rel_path,
                                    t.line,
                                    t.col,
                                    format!(
                                        "lock-order inversion: acquiring `{}` while `{}` \
                                         (held since line {}) is still held; declared order \
                                         is {} and same-class re-entry self-deadlocks",
                                        self.classes[class].class,
                                        self.classes[h.class].class,
                                        h.line,
                                        self.order()
                                    ),
                                )
                                .allowed_by(&["lock"]),
                            );
                        }
                    }
                }
                let binding = self.let_binding(j);
                held.push(Held {
                    class,
                    binding: binding.clone(),
                    depth,
                    paren,
                    stmt: binding.is_none(),
                    line: t.line,
                });
                return j + 1;
            }
        }

        // Forbidden call inside a held section?
        if self.summaries.is_some() {
            for h in held.iter() {
                if self.classes[h.class].forbid.contains(&t.text) {
                    self.findings.push(
                        Finding::new(
                            "lock-discipline",
                            &self.file.rel_path,
                            t.line,
                            t.col,
                            format!(
                                "`{}` called while `{}` (held since line {}) is held: \
                                 forbidden by the locks table — {}",
                                t.text,
                                self.classes[h.class].class,
                                h.line,
                                self.classes[h.class].why
                            ),
                        )
                        .allowed_by(&["lock"]),
                    );
                }
            }
        }

        // Interprocedural edge: only calls whose callee we can name
        // reliably (self-chains, paths, bare idents — never method
        // calls on locals or call results).
        if is_call && self.eligible_callee(j) {
            match self.summaries {
                None => {
                    self.calls.insert(t.text.clone());
                }
                Some(summary) => {
                    if let Some(acquired) = summary.get(&t.text) {
                        for &class in acquired {
                            for h in held.iter() {
                                if class <= h.class {
                                    self.findings.push(
                                        Finding::new(
                                            "lock-discipline",
                                            &self.file.rel_path,
                                            t.line,
                                            t.col,
                                            format!(
                                                "call to `{}` acquires `{}` while `{}` (held \
                                                 since line {}) is still held: lock-order \
                                                 inversion (declared order: {})",
                                                t.text,
                                                self.classes[class].class,
                                                self.classes[h.class].class,
                                                h.line,
                                                self.order()
                                            ),
                                        )
                                        .allowed_by(&["lock"]),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        j + 1
    }

    /// The class acquired by the call at `j`, if any. Reports `.lock()`
    /// on unclassified receivers as a finding (report pass only).
    fn acquisition_class(&mut self, j: usize, t: &crate::lexer::Token) -> Option<usize> {
        if let Some(ci) = self
            .classes
            .iter()
            .position(|c| c.acquire.contains(&t.text))
        {
            // Helper-function style (`lock_shard(i)`) — but only when
            // actually invoked, which `is_call` already established.
            return Some(ci);
        }
        if t.is_ident("lock") {
            let preceded_by_dot = self
                .file
                .prev_code_token(j)
                .is_some_and(|(_, p)| p.is_punct('.'));
            if preceded_by_dot {
                if let Some(recv) = self.receiver_field(j) {
                    if let Some(ci) = self.classes.iter().position(|c| c.acquire.contains(&recv)) {
                        return Some(ci);
                    }
                    if self.summaries.is_some() {
                        self.findings.push(
                            Finding::new(
                                "lock-discipline",
                                &self.file.rel_path,
                                t.line,
                                t.col,
                                format!(
                                    "`.lock()` on `{recv}` which no locks-table class \
                                     declares: classify the mutex and its place in the \
                                     lock order in AUDIT.json"
                                ),
                            )
                            .allowed_by(&["lock"]),
                        );
                    }
                }
            }
        }
        None
    }

    /// The field ident a `.lock()` call is invoked on, skipping index
    /// groups: `self.shards[index].lock()` → `shards`.
    fn receiver_field(&self, lock_idx: usize) -> Option<String> {
        let (di, dot) = self.file.prev_code_token(lock_idx)?;
        if !dot.is_punct('.') {
            return None;
        }
        let (mut k, mut t) = self.file.prev_code_token(di)?;
        while t.is_punct(']') {
            let open = self.match_bracket_back(k)?;
            let (pk, pt) = self.file.prev_code_token(open)?;
            k = pk;
            t = pt;
        }
        (t.kind == TokenKind::Ident).then(|| t.text.clone())
    }

    /// The matching `[` for the `]` at `close`, scanning backwards.
    fn match_bracket_back(&self, close: usize) -> Option<usize> {
        let mut depth = 0i32;
        for j in (0..=close).rev() {
            let t = &self.file.tokens[j];
            if t.is_comment() {
                continue;
            }
            if t.is_punct(']') {
                depth += 1;
            } else if t.is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
        None
    }

    /// Whether the call at `j` names a callee our summaries can track:
    /// a bare ident, a `path::call()`, or a `self.a.b.call()` chain of
    /// plain fields. Method calls on locals or on call results resolve
    /// through types we don't model, so they are excluded.
    fn eligible_callee(&self, j: usize) -> bool {
        let Some((pi, prev)) = self.file.prev_code_token(j) else {
            return true;
        };
        if prev.is_punct(':') {
            return true; // `Self::f(…)`, `layout::page_of(…)`
        }
        if !prev.is_punct('.') {
            return true; // bare call
        }
        // Walk the field chain back to `self`.
        let mut dot = pi;
        loop {
            let Some((si, seg)) = self.file.prev_code_token(dot) else {
                return false;
            };
            if seg.kind != TokenKind::Ident {
                return false; // `)`/`]` receiver: a call or index result
            }
            if seg.is_ident("self") {
                return true;
            }
            match self.file.prev_code_token(si) {
                Some((ndi, nd)) if nd.is_punct('.') => dot = ndi,
                _ => return false, // chain roots at a local
            }
        }
    }

    /// If the call at `j` is the initializer of a `let` statement,
    /// the bound name (skipping `mut` and one level of `&`).
    fn let_binding(&self, j: usize) -> Option<String> {
        // Walk back to the statement boundary.
        let mut k = j;
        let mut guard = 0usize;
        loop {
            let (pk, p) = self.file.prev_code_token(k)?;
            if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
                // First code token after the boundary begins the stmt.
                let (li, l) = self.file.next_code_token(pk + 1)?;
                if !l.is_ident("let") {
                    return None;
                }
                let (mi, mut name) = self.file.next_code_token(li + 1)?;
                if name.is_ident("mut") {
                    (_, name) = self.file.next_code_token(mi + 1)?;
                }
                return (name.kind == TokenKind::Ident).then(|| name.text.clone());
            }
            k = pk;
            guard += 1;
            if guard > 96 {
                return None; // give up on pathological statements
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes() -> Vec<LockClass> {
        vec![
            LockClass {
                class: "shard_engine".into(),
                acquire: vec!["lock_shard".into(), "shards".into()],
                forbid: vec!["trip_kill".into(), "unwrap".into(), "panic".into()],
                why: "shard critical sections must stay panic-free".into(),
            },
            LockClass {
                class: "lost_ledger".into(),
                acquire: vec!["lock_lost".into(), "lost".into()],
                forbid: vec![],
                why: "leaf lock".into(),
            },
            LockClass {
                class: "recovery_totals".into(),
                acquire: vec!["lock_totals".into(), "totals".into()],
                forbid: vec![],
                why: "leaf lock".into(),
            },
        ]
    }

    fn scan_src(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/toleo-core/src/sharded.rs", src);
        let mut used = BTreeSet::new();
        scan_workspace(&[&file], &classes(), &mut used)
    }

    #[test]
    fn ascending_order_is_clean() {
        let f = scan_src(
            "impl E { fn ok(&self) { let g = self.lock_shard(0); let t = self.lock_totals(); \
             t.n += 1; drop(t); drop(g); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn direct_inversion_is_flagged() {
        let f = scan_src(
            "impl E { fn bad(&self) { let t = self.lock_totals(); let g = self.lock_shard(0); } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("lock-order inversion"));
        assert!(f[0].message.contains("`shard_engine`"));
    }

    #[test]
    fn inversion_via_call_is_flagged() {
        let f = scan_src(
            "impl E {\n fn helper(&self) { let g = self.lock_shard(0); g.poke(); }\n \
             fn bad(&self) { let t = self.lock_totals(); self.helper(); } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0]
            .message
            .contains("call to `helper` acquires `shard_engine`"));
    }

    #[test]
    fn transitive_summary_reaches_fixpoint() {
        let f = scan_src(
            "impl E {\n fn leaf(&self) { let g = self.lock_shard(0); }\n \
             fn mid(&self) { self.leaf(); }\n \
             fn bad(&self) { let g = self.lock_shard(1); self.mid(); } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("same-class") || f[0].message.contains("call to `mid`"));
    }

    #[test]
    fn forbidden_call_under_lock_is_flagged() {
        let f =
            scan_src("impl E { fn bad(&self) { let g = self.lock_shard(0); self.trip_kill(); } }");
        assert!(
            f.iter().any(|x| x
                .message
                .contains("`trip_kill` called while `shard_engine`")),
            "{f:?}"
        );
    }

    #[test]
    fn block_scoped_guard_releases() {
        let f = scan_src(
            "impl E { fn ok(&self) { { let g = self.lock_shard(0); g.poke(); } \
             self.trip_kill_free(); let t = self.lock_totals(); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn temporary_guard_is_statement_scoped() {
        let f = scan_src(
            "impl E { fn ok(&self) { self.lock_shard(0).force_kill(); \
             let t = self.lock_totals(); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn drop_releases_early() {
        let f = scan_src(
            "impl E { fn ok(&self) { let g = self.lock_shard(0); drop(g); \
             let g2 = self.lock_shard(1); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unclassified_mutex_is_flagged() {
        let f = scan_src("impl E { fn f(&self) { self.extra.lock(); } }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`.lock()` on `extra`"));
    }

    #[test]
    fn method_on_guard_does_not_false_positive() {
        // `.stats()` on the guard returned by lock_shard must not pull
        // in the summary of an unrelated fn also named `stats`.
        let f = scan_src(
            "impl E {\n fn stats(&self) -> u64 { let g = self.lock_shard(0); g.n }\n \
             fn per_shard(&self) { let mut t = 0; t += self.lock_shard(1).stats(); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn panic_macro_under_lock_is_flagged() {
        let f =
            scan_src("impl E { fn bad(&self) { let g = self.lock_shard(0); panic!(\"boom\"); } }");
        assert!(
            f.iter().any(|x| x.message.contains("`panic` called while")),
            "{f:?}"
        );
    }
}
