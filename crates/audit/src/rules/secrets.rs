//! Rule 4 — **secret hygiene**.
//!
//! Key material must never reach a format string: a Debug-printed key
//! in a log or panic message is a key exfiltrated. Two checks:
//!
//! 1. Format-macro calls (`format!`, `println!`, `write!`, `panic!`,
//!    the assert family, …) must not reference a tainted identifier —
//!    one whose snake-case segments name key/seed/tweak/secret material
//!    — either inline (`{key:?}`) or as an argument (`"{:?}", key`).
//! 2. `#[derive(Debug)]` on a struct with a tainted field is flagged:
//!    write a manual impl that redacts (see `AesNiAes` in
//!    `crypto/src/backend.rs` for the pattern).

use crate::lexer::TokenKind;
use crate::rules::{Finding, Tier};
use crate::source::SourceFile;

const FORMAT_MACROS: [&str; 16] = [
    "format",
    "format_args",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "log",
];

/// Snake-case segments that mark an identifier as key material.
const TAINT_SEGMENTS: [&str; 9] = [
    "key", "keys", "seed", "seeds", "tweak", "tweaks", "derived", "secret", "secrets",
];

/// Whether `ident` names key/seed material.
pub fn tainted(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    lower.contains("secret") || lower.split('_').any(|seg| TAINT_SEGMENTS.contains(&seg))
}

/// Scans `file` for secret-hygiene findings (pre-suppression).
pub fn scan(file: &SourceFile, tier: Tier) -> Vec<Finding> {
    if tier == Tier::Test {
        return Vec::new();
    }
    let mut out = Vec::new();
    scan_format_macros(file, &mut out);
    scan_derive_debug(file, &mut out);
    out
}

fn scan_format_macros(file: &SourceFile, out: &mut Vec<Finding>) {
    let mut i = 0;
    while i < file.tokens.len() {
        let tok = &file.tokens[i];
        let is_macro = tok.kind == TokenKind::Ident
            && FORMAT_MACROS.contains(&tok.text.as_str())
            && !file.in_test_region(i)
            && file
                .next_code_token(i + 1)
                .is_some_and(|(_, t)| t.is_punct('!'));
        if !is_macro {
            i += 1;
            continue;
        }
        let Some((open_idx, open)) = file
            .next_code_token(i + 1)
            .and_then(|(bang, _)| file.next_code_token(bang + 1))
        else {
            i += 1;
            continue;
        };
        let close_c = match open.text.as_str() {
            "(" => ')',
            "[" => ']',
            "{" => '}',
            _ => {
                i += 1;
                continue;
            }
        };
        let open_c = open.text.chars().next().unwrap_or('(');
        let end = group_end(file, open_idx, open_c, close_c);
        check_group(file, &file.tokens[open_idx..=end], out);
        i = end + 1;
    }
}

/// Index of the delimiter closing the group opened at `open_idx`.
fn group_end(file: &SourceFile, open_idx: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0i64;
    for (idx, tok) in file.tokens.iter().enumerate().skip(open_idx) {
        if tok.is_punct(open_c) {
            depth += 1;
        } else if tok.is_punct(close_c) {
            depth -= 1;
            if depth <= 0 {
                return idx;
            }
        }
    }
    file.tokens.len() - 1
}

/// Checks one format-macro argument group: the format string's inline
/// `{…}` placeholders, then every identifier argument.
fn check_group(file: &SourceFile, group: &[crate::lexer::Token], out: &mut Vec<Finding>) {
    if let Some(fmt) = group.iter().find(|t| t.kind == TokenKind::Str) {
        for name in placeholder_names(fmt.string_content()) {
            if tainted(&name) {
                out.push(
                    Finding::new(
                        "secret-hygiene",
                        &file.rel_path,
                        fmt.line,
                        fmt.col,
                        format!(
                            "format string interpolates tainted identifier `{name}`: key material \
                             must not reach logs or panic messages"
                        ),
                    )
                    .allowed_by(&["secret"]),
                );
            }
        }
    }
    for tok in group {
        if tok.kind == TokenKind::Ident && tainted(&tok.text) {
            out.push(
                Finding::new(
                    "secret-hygiene",
                    &file.rel_path,
                    tok.line,
                    tok.col,
                    format!(
                        "tainted identifier `{}` passed to a format macro: key material must \
                         not reach logs or panic messages",
                        tok.text
                    ),
                )
                .allowed_by(&["secret"]),
            );
        }
    }
}

/// Identifier heads of `{…}` placeholders in a format string
/// (`{key}` → `key`, `{key:?}` → `key`, `{}`/`{0}` → none).
fn placeholder_names(fmt: &str) -> Vec<String> {
    let mut names = Vec::new();
    let chars: Vec<char> = fmt.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' {
            if chars.get(i + 1) == Some(&'{') {
                i += 2;
                continue;
            }
            let mut name = String::new();
            let mut j = i + 1;
            while let Some(&c) = chars.get(j) {
                if c.is_alphanumeric() || c == '_' {
                    name.push(c);
                    j += 1;
                } else {
                    break;
                }
            }
            if !name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                names.push(name);
            }
            i = j;
        } else {
            i += 1;
        }
    }
    names
}

/// Flags `#[derive(…Debug…)]` on structs with tainted fields.
fn scan_derive_debug(file: &SourceFile, out: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            continue;
        }
        if file.in_test_region(i) {
            continue;
        }
        let Some((j, name)) = file.next_code_token(i + 2) else {
            continue;
        };
        if !name.is_ident("derive") {
            continue;
        }
        let Some((open_idx, _)) = file.next_code_token(j + 1) else {
            continue;
        };
        let close = group_end(file, open_idx, '(', ')');
        let derives_debug = tokens[open_idx..=close].iter().any(|t| t.is_ident("Debug"));
        if !derives_debug {
            continue;
        }
        if let Some(field) = struct_tainted_field(file, close + 1) {
            out.push(
                Finding::new(
                    "secret-hygiene",
                    &file.rel_path,
                    tokens[i].line,
                    tokens[i].col,
                    format!(
                        "#[derive(Debug)] on a struct holding key material (field `{field}`): \
                         write a manual Debug impl that redacts it"
                    ),
                )
                .allowed_by(&["secret"]),
            );
        }
    }
}

/// If the item following token `from` is a braced struct, returns its
/// first tainted field name.
fn struct_tainted_field(file: &SourceFile, from: usize) -> Option<String> {
    let mut i = from;
    // Skip the attribute's closing `]`, further attributes, comments.
    loop {
        match file.tokens.get(i) {
            Some(t) if t.is_comment() || t.is_punct(']') => i += 1,
            Some(t)
                if t.is_punct('#') && file.tokens.get(i + 1).is_some_and(|n| n.is_punct('[')) =>
            {
                i = group_end(file, i + 1, '[', ']') + 1;
            }
            _ => break,
        }
    }
    // Accept `pub struct Name … {` within the next few tokens; bail on
    // enums, tuple structs and anything else.
    let mut saw_struct = false;
    let mut brace = None;
    let mut guard = 0;
    while let Some(tok) = file.tokens.get(i) {
        if tok.is_ident("struct") {
            saw_struct = true;
        } else if tok.is_ident("enum") || tok.is_ident("union") || tok.is_punct(';') {
            return None;
        } else if saw_struct && tok.is_punct('{') {
            brace = Some(i);
            break;
        }
        i += 1;
        guard += 1;
        if guard > 64 {
            return None; // long where-clauses are not key-holding structs
        }
    }
    let open = brace?;
    let close = group_end(file, open, '{', '}');
    let mut depth = 0i64;
    for k in open..close {
        let tok = &file.tokens[k];
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
        } else if depth == 1 && tok.kind == TokenKind::Ident && tainted(&tok.text) {
            // Field position: `name :` with a single colon.
            let colon = file.next_code_token(k + 1).is_some_and(|(m, t)| {
                t.is_punct(':')
                    && !file
                        .next_code_token(m + 1)
                        .is_some_and(|(_, t2)| t2.is_punct(':'))
            });
            if colon {
                return Some(tok.text.clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(src: &str) -> Vec<Finding> {
        scan(
            &SourceFile::parse("crates/crypto/src/demo.rs", src),
            Tier::Policy,
        )
    }

    #[test]
    fn taint_classifier() {
        for t in [
            "key",
            "mac_key",
            "derived",
            "device_seed",
            "tweak_key",
            "SecretBox",
            "keys",
        ] {
            assert!(tainted(t), "{t}");
        }
        for ok in [
            "page",
            "monkey_patch_no",
            "keyboard",
            "blocks",
            "tag",
            "version",
        ] {
            assert!(!tainted(ok), "{ok}");
        }
    }

    #[test]
    fn inline_placeholder_is_flagged() {
        let found = policy("fn f(key: u64) { println!(\"k={key:?}\"); }");
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("`key`"));
    }

    #[test]
    fn argument_is_flagged() {
        let found = policy("fn f(mac_key: [u8; 16]) { panic!(\"bad: {:?}\", mac_key); }");
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("`mac_key`"));
    }

    #[test]
    fn clean_format_is_clean() {
        let found = policy("fn f(pages: u64) { println!(\"pages={pages}, tag={}\", 7); }");
        assert!(found.is_empty());
    }

    #[test]
    fn untainted_braces_in_plain_strings_ignored() {
        let found = policy("fn f() { let s = \"{key}\"; }");
        assert!(found.is_empty(), "strings outside format macros are data");
    }

    #[test]
    fn derive_debug_on_key_struct_is_flagged() {
        let found = policy(
            "#[derive(Debug, Clone)]\npub struct Identity {\n    attestation_key: [u8; 16],\n}\n",
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
        assert!(found[0].message.contains("attestation_key"));
    }

    #[test]
    fn derive_debug_without_key_fields_is_clean() {
        let found = policy(
            "#[derive(Debug)]\npub struct Stats { reads: u64, tag_checks: u64 }\n#[derive(Debug)]\npub enum E { Key }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn derive_clone_only_is_clean() {
        let found = policy("#[derive(Clone)]\nstruct K { key: [u8; 16] }\n");
        assert!(found.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let found =
            policy("#[cfg(test)]\nmod t {\n    fn f(key: u64) { println!(\"{key}\"); }\n}\n");
        assert!(found.is_empty());
    }
}
