//! Rule 1 — **no-panic policy**.
//!
//! A panic in the protection engine is availability loss an attacker can
//! trigger: the schemes must fail *closed* (kill + `Err`), never abort.
//! In policy-crate library code, `unwrap`/`expect`, the panic macro
//! family, and slice indexing are findings unless annotated with
//! `// audit: allow(panic, reason)` (or, for indexing only,
//! `// audit: allow-file(indexing, reason)`). Elsewhere (bench harness,
//! binaries) panics may additionally be excused file-wide with
//! `// audit: allow-file(panic, reason)`.

use crate::lexer::TokenKind;
use crate::rules::{Finding, Tier, KEYWORDS};
use crate::source::SourceFile;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Scans `file` (tier `tier`) for panic-surface findings. Findings are
/// pre-suppression; `run_audit` applies annotations.
pub fn scan(file: &SourceFile, tier: Tier) -> Vec<Finding> {
    if tier == Tier::Test {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, tok) in file.tokens.iter().enumerate() {
        if tok.is_comment() || file.in_test_region(i) {
            continue;
        }
        match tok.kind {
            TokenKind::Ident if tok.text == "unwrap" || tok.text == "expect" => {
                let after_dot = file
                    .prev_code_token(i)
                    .is_some_and(|(_, p)| p.is_punct('.'));
                let called = file
                    .next_code_token(i + 1)
                    .is_some_and(|(_, n)| n.is_punct('('));
                if after_dot && called {
                    out.push(
                        Finding::new(
                            "no-panic",
                            &file.rel_path,
                            tok.line,
                            tok.col,
                            format!(
                                "`.{}()` in non-test code: convert to a Result path or annotate \
                                 with `// audit: allow(panic, reason)`",
                                tok.text
                            ),
                        )
                        .allowed_by(&["panic"]),
                    );
                }
            }
            TokenKind::Ident
                if PANIC_MACROS.contains(&tok.text.as_str())
                    && file
                        .next_code_token(i + 1)
                        .is_some_and(|(_, n)| n.is_punct('!')) =>
            {
                out.push(
                    Finding::new(
                        "no-panic",
                        &file.rel_path,
                        tok.line,
                        tok.col,
                        format!(
                            "`{}!` in non-test code: fail closed via an error path or \
                             annotate with `// audit: allow(panic, reason)`",
                            tok.text
                        ),
                    )
                    .allowed_by(&["panic"]),
                );
            }
            TokenKind::Punct if tier == Tier::Policy && tok.is_punct('[') => {
                if let Some((_, prev)) = file.prev_code_token(i) {
                    let indexable = (prev.kind == TokenKind::Ident
                        && !KEYWORDS.contains(&prev.text.as_str()))
                        || prev.is_punct(')')
                        || prev.is_punct(']');
                    if indexable {
                        out.push(
                            Finding::new(
                                "no-panic",
                                &file.rel_path,
                                tok.line,
                                tok.col,
                                "slice indexing in policy-crate code can panic on a bad bound: \
                                 use get()/iterators or annotate (`// audit: allow(panic, …)` \
                                 per line, `// audit: allow-file(indexing, …)` per file)"
                                    .to_string(),
                            )
                            .allowed_by(&["indexing", "panic"]),
                        );
                    }
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(src: &str) -> Vec<Finding> {
        scan(
            &SourceFile::parse("crates/toleo-core/src/demo.rs", src),
            Tier::Policy,
        )
    }

    #[test]
    fn catches_unwrap_expect_and_macros() {
        let found = policy(
            "fn f() {\n  let a = x.unwrap();\n  let b = y.expect(\"msg\");\n  panic!(\"no\");\n  unreachable!();\n}\n",
        );
        let lines: Vec<u32> = found.iter().map(|f| f.line).collect();
        assert_eq!(lines, [2, 3, 4, 5]);
        assert!(found.iter().all(|f| f.rule == "no-panic"));
    }

    #[test]
    fn ignores_unwrap_or_family_and_fields() {
        let found = policy(
            "fn f() {\n  let a = x.unwrap_or(0);\n  let b = y.unwrap_or_else(z);\n  let c = m.expect_none;\n}\n",
        );
        assert!(found.is_empty());
    }

    #[test]
    fn ignores_strings_comments_and_test_code() {
        let found = policy(
            "fn f() { let s = \"x.unwrap()\"; } // panic! here is prose\n#[cfg(test)]\nmod t { fn g() { x.unwrap(); } }\n",
        );
        assert!(found.is_empty());
    }

    #[test]
    fn flags_indexing_in_policy_tier_only() {
        let src = "fn f(v: &[u8], i: usize) -> u8 { v[i] }\n";
        assert_eq!(policy(src).len(), 1);
        let other = scan(
            &SourceFile::parse("crates/bench/src/lib.rs", src),
            Tier::Other,
        );
        assert!(other.is_empty());
    }

    #[test]
    fn indexing_ignores_types_attributes_and_macros() {
        let found = policy(
            "#[derive(Clone)]\nstruct S { a: [u8; 16] }\nfn f() -> Vec<[u8; 4]> { vec![[0u8; 4]] }\nfn g(x: &mut [[u8; 16]]) {}\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn chained_and_nested_indexing_each_flagged() {
        let found = policy("fn f() { m[i][j]; f()[0]; }\n");
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn test_tier_is_exempt() {
        let found = scan(
            &SourceFile::parse("tests/security.rs", "fn f() { x.unwrap(); panic!(); }"),
            Tier::Test,
        );
        assert!(found.is_empty());
    }
}
