//! Rule 6 — **blocking-in-poll**.
//!
//! Healthy batch workers promise to observe a peer's quarantine within
//! one `kill_poll_ops` chunk: the detection-latency bound the recovery
//! experiments gate. That promise is structural — the worker loop is
//! chunked by the poll knob and the loop body touches the kill flag
//! and the quarantine epoch every iteration. `AUDIT.json` declares
//! each kill-poll loop (file, the identifier chunking it, the probe
//! identifiers its body must touch) and this rule verifies the shape:
//! a declared loop missing a probe is a finding, as is a `chunks(…)`
//! loop over a poll-named bound that nobody declared. Findings accept
//! `// audit: allow(poll, reason)`.

use crate::lexer::TokenKind;
use crate::rules::{Finding, Tier};
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// One declared kill-poll loop.
#[derive(Debug, Clone)]
pub struct PollPolicy {
    pub file: String,
    /// The identifier whose value chunks the loop (`poll_ops`).
    pub chunker: String,
    /// Identifiers the loop body must touch (`killed`, `epoch`).
    pub probes: Vec<String>,
    pub why: String,
}

/// Scans `file` for `for … in ….chunks(<chunker>)` loops. Indices of
/// polls-table rows that matched are added to `used` so stale rows can
/// be reported at the end of the run.
pub fn scan(
    file: &SourceFile,
    tier: Tier,
    polls: &[PollPolicy],
    used: &mut BTreeSet<usize>,
) -> Vec<Finding> {
    if tier == Tier::Test {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, tok) in file.tokens.iter().enumerate() {
        if !tok.is_ident("chunks") || file.in_test_region(i) {
            continue;
        }
        let Some((open, _)) = file.next_code_token(i + 1).filter(|(_, t)| t.is_punct('(')) else {
            continue;
        };
        let Some(close) = match_paren(file, open) else {
            continue;
        };
        let Some(chunker) = last_ident_between(file, open, close) else {
            continue; // literal chunk size: not a poll knob
        };
        if !is_for_loop(file, i) {
            continue;
        }
        let row = polls
            .iter()
            .position(|p| p.file == file.rel_path && p.chunker == chunker);
        match row {
            Some(ri) => {
                used.insert(ri);
                let Some(body) = loop_body(file, close) else {
                    continue;
                };
                for probe in &polls[ri].probes {
                    if !body_touches(file, body, probe) {
                        out.push(
                            Finding::new(
                                "blocking-in-poll",
                                &file.rel_path,
                                tok.line,
                                tok.col,
                                format!(
                                    "kill-poll loop chunked by `{chunker}` never touches \
                                     `{probe}` in its body: every chunk boundary must observe \
                                     the kill flag and quarantine epoch within the declared \
                                     `kill_poll_ops` bound (AUDIT.json polls table)"
                                ),
                            )
                            .allowed_by(&["poll"]),
                        );
                    }
                }
            }
            None if tier == Tier::Policy && chunker.contains("poll") => {
                out.push(
                    Finding::new(
                        "blocking-in-poll",
                        &file.rel_path,
                        tok.line,
                        tok.col,
                        format!(
                            "kill-poll loop chunked by `{chunker}` is not declared in \
                             AUDIT.json's polls table: declare its chunker and required \
                             probe identifiers"
                        ),
                    )
                    .allowed_by(&["poll"]),
                );
            }
            None => {}
        }
    }
    out
}

/// The matching `)` for the `(` at `open`.
fn match_paren(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in file.tokens.iter().enumerate().skip(open) {
        if t.is_comment() {
            continue;
        }
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// The final identifier of the chunk-size expression between `open`
/// and `close` (`self.kill_poll_ops` → `kill_poll_ops`).
fn last_ident_between(file: &SourceFile, open: usize, close: usize) -> Option<String> {
    file.tokens[open + 1..close]
        .iter()
        .rev()
        .find(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
}

/// Whether the `chunks` token at `i` sits in a `for … in …` header:
/// a `for` keyword appears earlier in the same statement.
fn is_for_loop(file: &SourceFile, i: usize) -> bool {
    let mut k = i;
    let mut walked = 0usize;
    while let Some((pk, p)) = file.prev_code_token(k) {
        if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
            return false;
        }
        if p.is_ident("for") {
            return true;
        }
        k = pk;
        walked += 1;
        if walked > 64 {
            return false;
        }
    }
    false
}

/// The loop body braces following the chunks call at `close`: the
/// first `{` at paren depth 0 (skipping adapter chains such as
/// `.enumerate()`) and its match.
fn loop_body(file: &SourceFile, close: usize) -> Option<(usize, usize)> {
    let mut paren = 0i32;
    let mut j = close + 1;
    while j < file.tokens.len() {
        let t = &file.tokens[j];
        if t.is_comment() {
            j += 1;
            continue;
        }
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if paren == 0 && t.is_punct('{') {
            let mut depth = 0i32;
            for (k, u) in file.tokens.iter().enumerate().skip(j) {
                if u.is_comment() {
                    continue;
                }
                if u.is_punct('{') {
                    depth += 1;
                } else if u.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some((j, k));
                    }
                }
            }
            return None;
        }
        j += 1;
    }
    None
}

/// Whether any non-comment token in `body` is the ident `probe`.
fn body_touches(file: &SourceFile, body: (usize, usize), probe: &str) -> bool {
    file.tokens[body.0..=body.1]
        .iter()
        .any(|t| !t.is_comment() && t.is_ident(probe))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn polls() -> Vec<PollPolicy> {
        vec![PollPolicy {
            file: "crates/toleo-core/src/sharded.rs".into(),
            chunker: "poll_ops".into(),
            probes: vec!["killed".into(), "epoch".into()],
            why: "detection-latency bound".into(),
        }]
    }

    fn scan_src(src: &str, polls: &[PollPolicy]) -> (Vec<Finding>, BTreeSet<usize>) {
        let file = SourceFile::parse("crates/toleo-core/src/sharded.rs", src);
        let mut used = BTreeSet::new();
        let findings = scan(&file, Tier::Policy, polls, &mut used);
        (findings, used)
    }

    #[test]
    fn compliant_poll_loop_is_clean() {
        let (f, used) = scan_src(
            "fn run(&self) { for chunk in q.chunks(poll_ops) { \
             if self.killed.load(Ordering::Acquire) { return; } \
             let e = self.quarantine.epoch(); } }",
            &polls(),
        );
        assert!(f.is_empty(), "{f:?}");
        assert!(used.contains(&0));
    }

    #[test]
    fn missing_probe_is_flagged() {
        let (f, _) = scan_src(
            "fn run(&self) { for chunk in q.chunks(poll_ops) { \
             if self.killed.load(Ordering::Acquire) { return; } } }",
            &polls(),
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("never touches `epoch`"));
    }

    #[test]
    fn undeclared_poll_loop_is_flagged() {
        let (f, _) = scan_src(
            "fn run(&self) { for c in q.chunks(other_poll_ops) { work(c); } }",
            &polls(),
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("not declared"));
    }

    #[test]
    fn literal_and_non_poll_chunking_is_ignored() {
        let (f, _) = scan_src(
            "fn run(&self) { for c in q.chunks(64) {} for c in q.chunks(batch) {} }",
            &polls(),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn non_loop_chunks_call_is_ignored() {
        let (f, used) = scan_src("fn run(&self) { let it = q.chunks(poll_ops); }", &polls());
        assert!(f.is_empty(), "{f:?}");
        assert!(used.is_empty());
    }

    #[test]
    fn adapter_chain_still_finds_body() {
        let (f, _) = scan_src(
            "fn run(&self) { for (i, c) in q.chunks(poll_ops).enumerate() { \
             self.killed.load(Ordering::Acquire); self.quarantine.epoch(); } }",
            &polls(),
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
