//! Minimal JSON reader/writer for `AUDIT.json` and `--json` output.
//!
//! Self-contained by design (the auditor depends on nothing it audits):
//! a recursive-descent parser over the small, trusted schema this crate
//! itself writes, plus a deterministic pretty-printer whose object keys
//! keep insertion order so `--fix-inventory` produces stable diffs.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers as f64; the schema only stores small counts.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in insertion (= file) order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as u32)
            }
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&inner);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&inner);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document; the whole input must be one value.
pub fn parse(src: &str) -> Result<Json, String> {
    let chars: Vec<char> = src.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing data at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn expect(chars: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    if chars.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{c}` at offset {pos}", pos = *pos))
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => parse_obj(chars, pos),
        Some('[') => parse_arr(chars, pos),
        Some('"') => parse_str(chars, pos).map(Json::Str),
        Some('t') => parse_word(chars, pos, "true", Json::Bool(true)),
        Some('f') => parse_word(chars, pos, "false", Json::Bool(false)),
        Some('n') => parse_word(chars, pos, "null", Json::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_num(chars, pos),
        other => Err(format!("unexpected {other:?} at offset {pos}", pos = *pos)),
    }
}

fn parse_word(chars: &[char], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    for want in word.chars() {
        expect(chars, pos, want)?;
    }
    Ok(value)
}

fn parse_num(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while chars
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
    {
        *pos += 1;
    }
    let text: String = chars[start..*pos].iter().collect();
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number `{text}`: {e}"))
}

fn parse_str(chars: &[char], pos: &mut usize) -> Result<String, String> {
    expect(chars, pos, '"')?;
    let mut out = String::new();
    loop {
        match chars.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match chars.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let hex: String = chars
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?
                            .iter()
                            .collect();
                        let code =
                            u32::from_str_radix(&hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(c) => {
                out.push(*c);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    expect(chars, pos, '[')?;
    let mut items = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(chars, pos)?);
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => {
                *pos += 1;
            }
            Some(']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected `,` or `]`, got {other:?}")),
        }
    }
}

fn parse_obj(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    expect(chars, pos, '{')?;
    let mut pairs = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(chars, pos);
        let key = parse_str(chars, pos)?;
        skip_ws(chars, pos);
        expect(chars, pos, ':')?;
        let value = parse_value(chars, pos)?;
        pairs.push((key, value));
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => {
                *pos += 1;
            }
            Some('}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            other => return Err(format!("expected `,` or `}}`, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_schema_shape() {
        let src = r#"{
  "schema": "toleo-audit/v1",
  "unsafe": {
    "crates/crypto/src/backend.rs": 23
  },
  "allow": [
    {
      "file": "a.rs",
      "rule": "panic",
      "scope": "line",
      "reason": "why \"quoted\""
    }
  ],
  "atomics": {
    "killed": {
      "orderings": ["SeqCst"],
      "why": "kill must be totally ordered"
    }
  }
}
"#;
        let parsed = parse(src).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("toleo-audit/v1")
        );
        assert_eq!(
            parsed
                .get("unsafe")
                .and_then(|u| u.get("crates/crypto/src/backend.rs"))
                .and_then(Json::as_u32),
            Some(23)
        );
        // pretty() -> parse() is the identity on values.
        assert_eq!(parse(&parsed.pretty()).unwrap(), parsed);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("line\nquote\" back\\ tab\t".to_string());
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("'single'").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("42").unwrap().as_u32(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u32(), None);
        assert_eq!(parse("1.5").unwrap(), Json::Num(1.5));
    }

    #[test]
    fn object_order_is_preserved() {
        let parsed = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<_> = parsed
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
