//! `toleo-audit` — the workspace static-analysis pass.
//!
//! The reproduction's security argument rests on invariants that rustc
//! does not check: protection-engine code must fail closed instead of
//! panicking, the two intrinsics carve-outs must stay the only unsafe
//! code and carry `SAFETY:` proofs, key material must never reach a
//! format string, and the quarantine/recovery handshake's concurrency
//! protocol must hold — every atomic site pairs orderings per its
//! declared role (`atomic-protocol`), mutexes respect the declared
//! lock order and critical-section hygiene (`lock-discipline`), and
//! every kill-poll loop observes the kill flag and quarantine epoch
//! within its chunk bound (`blocking-in-poll`). This crate lexes every
//! `.rs` file under `crates/`, `src/` and `tests/` (no external parser
//! — the workspace vendors offline) and enforces those invariants as
//! CI-fatal findings, with an annotation/baseline system
//! (`// audit: allow`, `AUDIT.json` schema v2) that makes every
//! exception explicit, justified and diff-reviewed.

pub mod baseline;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod source;

use baseline::{Baseline, BaselineAllow};
use rules::{tier, Finding, Tier};
use source::{Allowance, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Directories scanned, relative to the workspace root.
const SCAN_ROOTS: [&str; 3] = ["crates", "src", "tests"];

/// Paths (prefix match on the repo-relative path) never scanned: the
/// audit fixtures are deliberate rule violations.
const EXCLUDE_PREFIXES: [&str; 1] = ["crates/audit/tests/fixtures"];

/// The result of one audit run.
#[derive(Debug, Default)]
pub struct Report {
    /// All surviving findings, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Every allowance annotation in the tree (the inventory).
    pub allowances: Vec<Allowance>,
    /// file → `unsafe` token count, as measured from the tree.
    pub unsafe_inventory: BTreeMap<String, u32>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Renders the report as JSON (`--json`).
    pub fn to_json(&self) -> String {
        let findings: Vec<json::Json> = self
            .findings
            .iter()
            .map(|f| {
                json::Json::Obj(vec![
                    ("rule".into(), json::Json::Str(f.rule.to_string())),
                    ("file".into(), json::Json::Str(f.file.clone())),
                    ("line".into(), json::Json::Num(f.line as f64)),
                    ("col".into(), json::Json::Num(f.col as f64)),
                    ("message".into(), json::Json::Str(f.message.clone())),
                ])
            })
            .collect();
        let allowances: Vec<json::Json> = self
            .allowances
            .iter()
            .map(|a| {
                json::Json::Obj(vec![
                    ("file".into(), json::Json::Str(a.file.clone())),
                    ("line".into(), json::Json::Num(a.line as f64)),
                    ("rule".into(), json::Json::Str(a.rule.clone())),
                    (
                        "scope".into(),
                        json::Json::Str(if a.file_level { "file" } else { "line" }.to_string()),
                    ),
                    ("reason".into(), json::Json::Str(a.reason.clone())),
                ])
            })
            .collect();
        let unsafe_inv: Vec<(String, json::Json)> = self
            .unsafe_inventory
            .iter()
            .map(|(file, count)| (file.clone(), json::Json::Num(*count as f64)))
            .collect();
        json::Json::Obj(vec![
            (
                "schema".into(),
                json::Json::Str("toleo-audit-report/v1".into()),
            ),
            (
                "files_scanned".into(),
                json::Json::Num(self.files_scanned as f64),
            ),
            ("findings".into(), json::Json::Arr(findings)),
            ("allow".into(), json::Json::Arr(allowances)),
            ("unsafe".into(), json::Json::Obj(unsafe_inv)),
        ])
        .pretty()
    }
}

/// Runs the full audit over the workspace at `root`.
pub fn run_audit(root: &Path) -> Result<Report, String> {
    let baseline = Baseline::load(&root.join("AUDIT.json"))?;
    let files = discover(root)?;
    let mut parsed = Vec::with_capacity(files.len());
    for (abs, rel) in &files {
        let text = std::fs::read_to_string(abs).map_err(|e| format!("{rel}: {e}"))?;
        parsed.push(SourceFile::parse(rel, &text));
    }
    let mut report = Report {
        files_scanned: parsed.len(),
        ..Report::default()
    };
    let mut atomic_used: BTreeSet<String> = BTreeSet::new();
    let mut lock_used: BTreeSet<String> = BTreeSet::new();
    let mut poll_used: BTreeSet<usize> = BTreeSet::new();

    // Lock discipline is a workspace pass: inversions propagate through
    // calls, so the rule needs every policy-tier file at once. Its
    // findings are routed back to their files for annotation handling.
    let policy_files: Vec<&SourceFile> = parsed
        .iter()
        .filter(|f| tier(&f.rel_path) == Tier::Policy)
        .collect();
    let mut lock_by_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for finding in rules::locks::scan_workspace(&policy_files, &baseline.locks, &mut lock_used) {
        lock_by_file
            .entry(finding.file.clone())
            .or_default()
            .push(finding);
    }

    for file in &parsed {
        let extra = lock_by_file.remove(&file.rel_path).unwrap_or_default();
        audit_file(
            file,
            &baseline,
            &mut report,
            &mut atomic_used,
            &mut poll_used,
            extra,
        );
    }
    diff_unsafe_inventory(&baseline, &report.unsafe_inventory, &mut report.findings);
    diff_allow_inventory(&baseline, &report.allowances, &mut report.findings);
    for policy in &baseline.atomics {
        if !atomic_used.contains(&policy.atomic) {
            report.findings.push(Finding::new(
                "atomic-protocol",
                "AUDIT.json",
                0,
                0,
                format!(
                    "protocol row `{}` matches no atomic operation in the tree: remove the \
                     stale row",
                    policy.atomic
                ),
            ));
        }
    }
    for class in &baseline.locks {
        if !lock_used.contains(&class.class) {
            report.findings.push(Finding::new(
                "lock-discipline",
                "AUDIT.json",
                0,
                0,
                format!(
                    "locks class `{}` matches no acquisition in the tree: remove the stale row",
                    class.class
                ),
            ));
        }
    }
    for (ri, poll) in baseline.polls.iter().enumerate() {
        if !poll_used.contains(&ri) {
            report.findings.push(Finding::new(
                "blocking-in-poll",
                "AUDIT.json",
                0,
                0,
                format!(
                    "polls row for `{}` (chunker `{}`) matches no loop in the tree: remove \
                     the stale row",
                    poll.file, poll.chunker
                ),
            ));
        }
    }
    report
        .findings
        .extend(rules::atomics::validate_policy(&baseline.atomics));
    if baseline.migrated_from_v1 {
        report.findings.push(Finding::new(
            "baseline-schema",
            "AUDIT.json",
            0,
            0,
            format!(
                "AUDIT.json uses schema `{}`: run `toleo-audit --fix-inventory` to migrate \
                 it to `{}` (roles are inferred, then hand-review the protocol table)",
                baseline::SCHEMA_V1,
                baseline::SCHEMA
            ),
        ));
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}

/// Audits one parsed file: runs every per-file rule, merges in any
/// workspace-pass findings for this file, applies annotations, and
/// reports stale or malformed annotations.
fn audit_file(
    file: &SourceFile,
    baseline: &Baseline,
    report: &mut Report,
    atomic_used: &mut BTreeSet<String>,
    poll_used: &mut BTreeSet<usize>,
    extra: Vec<Finding>,
) {
    let tier = tier(&file.rel_path);
    for (line, msg) in &file.annotation_errors {
        report.findings.push(Finding::new(
            "annotation",
            &file.rel_path,
            *line,
            1,
            msg.clone(),
        ));
    }

    let mut raw = extra;
    raw.extend(rules::no_panic::scan(file, tier));
    raw.extend(rules::secrets::scan(file, tier));
    raw.extend(rules::unsafe_code::scan(file, &mut report.unsafe_inventory));
    raw.extend(rules::atomics::scan(
        file,
        tier,
        &baseline.atomics,
        atomic_used,
    ));
    raw.extend(rules::poll::scan(file, tier, &baseline.polls, poll_used));

    let mut used = vec![false; file.allowances.len()];
    for finding in raw {
        let mut suppressed = false;
        for (ai, a) in file.allowances.iter().enumerate() {
            if allowance_covers(a, &finding, tier) {
                used[ai] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            report.findings.push(finding);
        }
    }
    for (ai, a) in file.allowances.iter().enumerate() {
        report.allowances.push(a.clone());
        if a.file_level && matches!(a.rule.as_str(), "panic" | "secret") && tier == Tier::Policy {
            report.findings.push(Finding::new(
                "annotation",
                &file.rel_path,
                a.line,
                1,
                format!(
                    "file-level {rule} allowance is not permitted in policy crates: each \
                     {rule} site needs its own `// audit: allow({rule}, reason)`",
                    rule = a.rule
                ),
            ));
        } else if !used[ai] {
            report.findings.push(Finding::new(
                "annotation",
                &file.rel_path,
                a.line,
                1,
                format!(
                    "stale allowance `audit: {}({}, …)` suppresses nothing: delete it (the \
                     allowlist only shrinks)",
                    if a.file_level { "allow-file" } else { "allow" },
                    a.rule
                ),
            ));
        }
    }
}

/// Whether allowance `a` excuses `finding` in a file of tier `tier`.
fn allowance_covers(a: &Allowance, finding: &Finding, tier: Tier) -> bool {
    if !finding.allow_rules.contains(&a.rule.as_str()) {
        return false;
    }
    if a.file_level {
        match a.rule.as_str() {
            "indexing" => true,
            // Policy crates must justify every panic and secret site
            // individually; elsewhere (bench bins, sim harnesses) a
            // file-wide reason is enough.
            "panic" | "secret" => tier != Tier::Policy,
            _ => false,
        }
    } else {
        a.line == finding.line || a.covers_line == finding.line
    }
}

fn diff_unsafe_inventory(
    baseline: &Baseline,
    current: &BTreeMap<String, u32>,
    findings: &mut Vec<Finding>,
) {
    let files: BTreeSet<&String> = baseline
        .unsafe_counts
        .keys()
        .chain(current.keys())
        .collect();
    for file in files {
        let base = baseline.unsafe_counts.get(file).copied().unwrap_or(0);
        let now = current.get(file).copied().unwrap_or(0);
        if base != now {
            findings.push(Finding::new(
                "unsafe-inventory",
                file,
                0,
                0,
                format!(
                    "unsafe count {now} != committed baseline {base}: review the change, then \
                     run `toleo-audit --fix-inventory` and commit AUDIT.json"
                ),
            ));
        }
    }
}

fn diff_allow_inventory(baseline: &Baseline, current: &[Allowance], findings: &mut Vec<Finding>) {
    let mut counts: BTreeMap<BaselineAllow, i64> = BTreeMap::new();
    for a in current {
        *counts.entry(BaselineAllow::of(a)).or_insert(0) += 1;
    }
    for b in &baseline.allow {
        *counts.entry(b.clone()).or_insert(0) -= 1;
    }
    for (entry, delta) in counts {
        if delta > 0 {
            findings.push(Finding::new(
                "allow-baseline",
                &entry.file,
                0,
                0,
                format!(
                    "new allowance not in AUDIT.json ({} {} \"{}\"): justify it in review, \
                     then run `toleo-audit --fix-inventory`",
                    entry.scope, entry.rule, entry.reason
                ),
            ));
        } else if delta < 0 {
            findings.push(Finding::new(
                "allow-baseline",
                &entry.file,
                0,
                0,
                format!(
                    "AUDIT.json lists an allowance no longer in the tree ({} {} \"{}\"): run \
                     `toleo-audit --fix-inventory` to shrink the baseline",
                    entry.scope, entry.rule, entry.reason
                ),
            ));
        }
    }
}

/// Regenerates the `unsafe` and `allow` inventory sections of
/// `AUDIT.json` from the current tree, preserving the atomic policy
/// table. Returns the rendered document.
pub fn fix_inventory(root: &Path) -> Result<String, String> {
    let baseline = Baseline::load(&root.join("AUDIT.json"))?;
    let files = discover(root)?;
    let mut unsafe_counts = BTreeMap::new();
    let mut allow = Vec::new();
    for (abs, rel) in &files {
        let text = std::fs::read_to_string(abs).map_err(|e| format!("{rel}: {e}"))?;
        let file = SourceFile::parse(rel, &text);
        rules::unsafe_code::scan(&file, &mut unsafe_counts);
        allow.extend(file.allowances.iter().map(BaselineAllow::of));
    }
    let rendered = baseline.render(&unsafe_counts, &allow);
    std::fs::write(root.join("AUDIT.json"), &rendered).map_err(|e| format!("AUDIT.json: {e}"))?;
    Ok(rendered)
}

/// Every `.rs` file under the scan roots, as (absolute, repo-relative)
/// pairs sorted by relative path.
pub fn discover(root: &Path) -> Result<Vec<(PathBuf, String)>, String> {
    let mut files = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(PathBuf, String)>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if EXCLUDE_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        if path.is_dir() {
            if entry.file_name() == "target" {
                continue;
            }
            walk(&path, root, out)?;
        } else if rel.ends_with(".rs") {
            out.push((path, rel));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(root: &Path, rel: &str, content: &str) {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, content).unwrap();
    }

    fn temp_root(name: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("toleo-audit-lib-{name}"));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        root
    }

    #[test]
    fn end_to_end_clean_tree() {
        let root = temp_root("clean");
        write(
            &root,
            "crates/toleo-core/src/lib.rs",
            "pub fn add(a: u64, b: u64) -> u64 { a.wrapping_add(b) }\n",
        );
        let report = run_audit(&root).unwrap();
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.files_scanned, 1);
    }

    #[test]
    fn annotation_suppresses_and_inventory_tracks() {
        let root = temp_root("suppress");
        write(
            &root,
            "crates/toleo-core/src/lib.rs",
            "pub fn f(v: &[u8]) -> u8 {\n    // audit: allow(panic, caller checked non-empty)\n    v.first().copied().unwrap()\n}\n",
        );
        write(
            &root,
            "AUDIT.json",
            &format!(
                "{{\n  \"schema\": \"{}\",\n  \"allow\": [{{\"file\": \"crates/toleo-core/src/lib.rs\", \"rule\": \"panic\", \"scope\": \"line\", \"reason\": \"caller checked non-empty\"}}]\n}}\n",
                baseline::SCHEMA
            ),
        );
        let report = run_audit(&root).unwrap();
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.allowances.len(), 1);
    }

    #[test]
    fn unbaselined_allowance_is_flagged() {
        let root = temp_root("newallow");
        write(
            &root,
            "crates/toleo-core/src/lib.rs",
            "pub fn f(v: &[u8]) -> u8 {\n    // audit: allow(panic, new excuse)\n    v.first().copied().unwrap()\n}\n",
        );
        let report = run_audit(&root).unwrap();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "allow-baseline");
    }

    #[test]
    fn stale_annotation_is_flagged() {
        let root = temp_root("stale");
        write(
            &root,
            "crates/toleo-core/src/lib.rs",
            "// audit: allow(panic, nothing here panics)\npub fn f() -> u8 { 7 }\n",
        );
        let report = run_audit(&root).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "annotation" && f.message.contains("stale")));
    }

    #[test]
    fn file_level_panic_allow_rejected_in_policy_crate() {
        let root = temp_root("filelevel");
        write(
            &root,
            "crates/crypto/src/lib.rs",
            "// audit: allow-file(panic, blanket excuse)\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        let report = run_audit(&root).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "annotation" && f.message.contains("not permitted")));
        // And the unwrap itself still surfaces.
        assert!(report.findings.iter().any(|f| f.rule == "no-panic"));
    }

    #[test]
    fn file_level_panic_allow_works_outside_policy_crates() {
        let root = temp_root("benchallow");
        write(
            &root,
            "crates/bench/src/bin/demo.rs",
            "// audit: allow-file(panic, bench binary aborts on setup failure by design)\nfn main() { std::env::args().next().unwrap(); }\n",
        );
        write(
            &root,
            "AUDIT.json",
            &format!(
                "{{\n  \"schema\": \"{}\",\n  \"allow\": [{{\"file\": \"crates/bench/src/bin/demo.rs\", \"rule\": \"panic\", \"scope\": \"file\", \"reason\": \"bench binary aborts on setup failure by design\"}}]\n}}\n",
                baseline::SCHEMA
            ),
        );
        let report = run_audit(&root).unwrap();
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn unsafe_growth_against_baseline_is_flagged() {
        let root = temp_root("unsafegrow");
        write(
            &root,
            "crates/crypto/src/backend.rs",
            "// SAFETY: test invariant\nunsafe fn f() {}\n",
        );
        let report = run_audit(&root).unwrap();
        assert!(report.findings.iter().any(
            |f| f.rule == "unsafe-inventory" && f.message.contains("1 != committed baseline 0")
        ));
    }

    #[test]
    fn fixtures_are_excluded_from_discovery() {
        let root = temp_root("exclude");
        write(
            &root,
            "crates/audit/tests/fixtures/bad/crates/crypto/src/lib.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        write(&root, "crates/crypto/src/lib.rs", "pub fn ok() {}\n");
        let report = run_audit(&root).unwrap();
        assert_eq!(report.files_scanned, 1);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn fix_inventory_writes_a_loadable_baseline() {
        let root = temp_root("fix");
        write(
            &root,
            "crates/crypto/src/backend.rs",
            "// SAFETY: intrinsics guarded by feature detection\nunsafe fn f() {}\n// audit: allow-file(indexing, table lookups masked to table size)\n",
        );
        fix_inventory(&root).unwrap();
        let b = Baseline::load(&root.join("AUDIT.json")).unwrap();
        assert_eq!(b.unsafe_counts["crates/crypto/src/backend.rs"], 1);
        assert_eq!(b.allow.len(), 1);
        // After fixing, the only findings left are the (intentionally
        // stale-looking) indexing allowance — which suppresses nothing
        // in this tiny tree — so prune it and re-fix for a clean run.
        let report = run_audit(&root).unwrap();
        assert!(
            report.findings.iter().all(|f| f.rule == "annotation"),
            "{:?}",
            report.findings
        );
    }
}
