//! Known-bad fixture: the polls table requires every `poll_ops`
//! chunked loop to touch both `killed` and `epoch`; this loop checks
//! the kill flag but never the quarantine epoch, so it must surface as
//! a `blocking-in-poll` finding.

pub struct Worker;

impl Worker {
    pub fn killed(&self) -> bool {
        false
    }

    pub fn drain(&self, queue: &[u64], poll_ops: usize) {
        for chunk in queue.chunks(poll_ops) {
            if self.killed() {
                return;
            }
            let _ = chunk;
        }
    }
}
