//! Fixture: sound code under a schema-v1 AUDIT.json. The only finding
//! must be the `baseline-schema` migration pointer; after
//! `--fix-inventory` rewrites the baseline to v2 the tree is clean.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Engine {
    killed: AtomicBool,
}

impl Engine {
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }
}
