//! Known-good fixture: plain arithmetic with no panics, no unsafe, no
//! atomics and no key material must produce zero findings.

pub fn add(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}
