//! Known-bad fixture: an unannotated `.unwrap()` in policy-crate
//! non-test code must surface as a `no-panic` finding.

pub fn head(v: &[u8]) -> u8 {
    v.first().copied().unwrap()
}
