//! Known-bad fixture: `#[derive(Debug)]` on a struct holding key
//! material must surface as a `secret-hygiene` finding — Debug output
//! of a key is a key exfiltrated.

#[derive(Debug)]
pub struct MacKey {
    pub key: [u8; 16],
}
