//! Known-bad fixture: an `unsafe` block with no SAFETY comment must
//! surface as an `unsafe-safety` finding. The committed AUDIT.json
//! already carries the count of 1, so only the missing justification
//! is reported, not inventory drift.

pub fn poke(p: *mut u8) {
    unsafe {
        *p = 1;
    }
}
