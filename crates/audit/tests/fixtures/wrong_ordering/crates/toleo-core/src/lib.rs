//! Known-bad fixture: the kill flag's policy table permits only
//! `SeqCst`, so a `Relaxed` load must surface as an `atomic-ordering`
//! finding.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Engine {
    killed: AtomicBool,
}

impl Engine {
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::Relaxed)
    }
}
