//! Known-bad fixture: the kill flag's protocol row (role `flag`)
//! permits only `Acquire`/`SeqCst` loads, so a `Relaxed` load must
//! surface as a mis-paired `atomic-protocol` finding.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Engine {
    killed: AtomicBool,
}

impl Engine {
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::Relaxed)
    }
}
