//! Known-bad fixture: the locks table declares shard_engine <
//! recovery_totals, so taking the totals lock first and a shard lock
//! second must surface as a `lock-discipline` inversion finding.

pub struct Engine;

impl Engine {
    pub fn totals_then_shard(&self) {
        let totals = self.lock_totals();
        let shard = self.lock_shard(0);
        let _ = (totals, shard);
    }
}
