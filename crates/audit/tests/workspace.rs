//! The workspace-clean gate as a plain test: auditing the real
//! repository root must produce zero findings, exactly as the CI
//! `audit` job requires. This keeps `cargo test` and
//! `cargo run -p toleo-audit -- --check` in lockstep.

use std::path::PathBuf;

use toleo_audit::run_audit;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/audit sits two levels below the repo root")
        .to_path_buf()
}

#[test]
fn workspace_is_audit_clean() {
    let report = run_audit(&repo_root()).expect("workspace audit runs");
    assert!(
        report.findings.is_empty(),
        "the workspace must stay audit-clean; run `cargo run -p toleo-audit -- --check` \
         and fix or annotate each finding:\n{:#?}",
        report.findings
    );
    assert!(report.files_scanned > 50, "discovery lost the workspace");
}
