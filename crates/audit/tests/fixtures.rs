//! Integration tests over the known-bad (and one known-good) fixture
//! trees in `tests/fixtures/`. Each fixture is a miniature workspace
//! root; the assertions pin the exact rule, file, line and column so a
//! diagnostic that silently drifts breaks loudly here.

use std::path::PathBuf;

use toleo_audit::run_audit;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs the audit on one fixture and asserts it produced exactly one
/// finding, returned for further inspection.
fn sole_finding(name: &str) -> toleo_audit::rules::Finding {
    let report = run_audit(&fixture_root(name)).expect("fixture audit runs");
    assert_eq!(
        report.findings.len(),
        1,
        "fixture `{name}` should produce exactly one finding, got {:?}",
        report.findings
    );
    report.findings.into_iter().next().expect("one finding")
}

#[test]
fn bare_panic_is_flagged_at_the_unwrap() {
    let f = sole_finding("bare_panic");
    assert_eq!(f.rule, "no-panic");
    assert_eq!(f.file, "crates/toleo-core/src/lib.rs");
    assert_eq!((f.line, f.col), (5, 24));
    assert!(f.message.contains(".unwrap()"), "{}", f.message);
}

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let f = sole_finding("unsafe_no_safety");
    assert_eq!(f.rule, "unsafe-safety");
    assert_eq!(f.file, "crates/crypto/src/backend.rs");
    assert_eq!((f.line, f.col), (7, 5));
    assert!(f.message.contains("SAFETY"), "{}", f.message);
}

#[test]
fn mispaired_ordering_is_flagged_against_the_protocol_table() {
    let f = sole_finding("wrong_ordering");
    assert_eq!(f.rule, "atomic-protocol");
    assert_eq!(f.file, "crates/toleo-core/src/lib.rs");
    assert_eq!((f.line, f.col), (13, 26));
    assert_eq!(
        f.message,
        "`killed` load uses `Ordering::Relaxed` but its `flag` protocol row permits \
         [Acquire, SeqCst]: fix the call site or re-justify the row"
    );
}

#[test]
fn lock_order_inversion_is_flagged_at_the_second_acquisition() {
    let f = sole_finding("lock_inversion");
    assert_eq!(f.rule, "lock-discipline");
    assert_eq!(f.file, "crates/toleo-core/src/lib.rs");
    assert_eq!((f.line, f.col), (10, 26));
    assert_eq!(
        f.message,
        "lock-order inversion: acquiring `shard_engine` while `recovery_totals` (held since \
         line 9) is still held; declared order is shard_engine < recovery_totals and \
         same-class re-entry self-deadlocks"
    );
}

#[test]
fn poll_loop_missing_a_probe_is_flagged_at_the_chunker() {
    let f = sole_finding("poll_missing_probe");
    assert_eq!(f.rule, "blocking-in-poll");
    assert_eq!(f.file, "crates/toleo-core/src/lib.rs");
    assert_eq!((f.line, f.col), (14, 28));
    assert_eq!(
        f.message,
        "kill-poll loop chunked by `poll_ops` never touches `epoch` in its body: every chunk \
         boundary must observe the kill flag and quarantine epoch within the declared \
         `kill_poll_ops` bound (AUDIT.json polls table)"
    );
}

#[test]
fn derived_debug_on_key_material_is_flagged() {
    let f = sole_finding("debug_key");
    assert_eq!(f.rule, "secret-hygiene");
    assert_eq!(f.file, "crates/crypto/src/lib.rs");
    assert_eq!((f.line, f.col), (5, 1));
    assert!(f.message.contains("field `key`"), "{}", f.message);
}

#[test]
fn clean_fixture_produces_no_findings() {
    let report = run_audit(&fixture_root("clean")).expect("fixture audit runs");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn v1_baseline_surfaces_only_the_migration_pointer() {
    let f = sole_finding("v1_baseline");
    assert_eq!(f.rule, "baseline-schema");
    assert_eq!(f.file, "AUDIT.json");
    assert!(f.message.contains("--fix-inventory"), "{}", f.message);
}

/// `--fix-inventory` on a v1 baseline migrates it to v2 in place and
/// the subsequent audit is clean: the round trip the CLI promises.
#[test]
fn fix_inventory_migrates_v1_to_v2() {
    let src = fixture_root("v1_baseline");
    let root = std::env::temp_dir().join("toleo-audit-v1-migration");
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(root.join("crates/toleo-core/src")).expect("mkdir");
    for rel in ["AUDIT.json", "crates/toleo-core/src/lib.rs"] {
        std::fs::copy(src.join(rel), root.join(rel)).expect("copy fixture");
    }
    let rendered = toleo_audit::fix_inventory(&root).expect("migration succeeds");
    assert!(
        rendered.contains("\"schema\": \"toleo-audit/v2\""),
        "{rendered}"
    );
    assert!(rendered.contains("\"role\": \"flag\""), "{rendered}");
    assert!(
        rendered.contains("kill switch must be totally ordered"),
        "why column survives: {rendered}"
    );
    let report = run_audit(&root).expect("audit after migration");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    std::fs::remove_dir_all(&root).ok();
}
