//! Integration tests over the known-bad (and one known-good) fixture
//! trees in `tests/fixtures/`. Each fixture is a miniature workspace
//! root; the assertions pin the exact rule, file, line and column so a
//! diagnostic that silently drifts breaks loudly here.

use std::path::PathBuf;

use toleo_audit::run_audit;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs the audit on one fixture and asserts it produced exactly one
/// finding, returned for further inspection.
fn sole_finding(name: &str) -> toleo_audit::rules::Finding {
    let report = run_audit(&fixture_root(name)).expect("fixture audit runs");
    assert_eq!(
        report.findings.len(),
        1,
        "fixture `{name}` should produce exactly one finding, got {:?}",
        report.findings
    );
    report.findings.into_iter().next().expect("one finding")
}

#[test]
fn bare_panic_is_flagged_at_the_unwrap() {
    let f = sole_finding("bare_panic");
    assert_eq!(f.rule, "no-panic");
    assert_eq!(f.file, "crates/toleo-core/src/lib.rs");
    assert_eq!((f.line, f.col), (5, 24));
    assert!(f.message.contains(".unwrap()"), "{}", f.message);
}

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let f = sole_finding("unsafe_no_safety");
    assert_eq!(f.rule, "unsafe-safety");
    assert_eq!(f.file, "crates/crypto/src/backend.rs");
    assert_eq!((f.line, f.col), (7, 5));
    assert!(f.message.contains("SAFETY"), "{}", f.message);
}

#[test]
fn undocumented_ordering_is_flagged_against_the_policy_table() {
    let f = sole_finding("wrong_ordering");
    assert_eq!(f.rule, "atomic-ordering");
    assert_eq!(f.file, "crates/toleo-core/src/lib.rs");
    assert_eq!((f.line, f.col), (13, 26));
    assert!(f.message.contains("permits only [SeqCst]"), "{}", f.message);
}

#[test]
fn derived_debug_on_key_material_is_flagged() {
    let f = sole_finding("debug_key");
    assert_eq!(f.rule, "secret-hygiene");
    assert_eq!(f.file, "crates/crypto/src/lib.rs");
    assert_eq!((f.line, f.col), (5, 1));
    assert!(f.message.contains("field `key`"), "{}", f.message);
}

#[test]
fn clean_fixture_produces_no_findings() {
    let report = run_audit(&fixture_root("clean")).expect("fixture audit runs");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.files_scanned, 1);
}
