//! Shared sealed-block storage for the baseline engines.
//!
//! Every compared scheme stores the same thing in untrusted memory — an
//! AES-CTR ciphertext (version as nonce) plus a MAC binding
//! `(version, address, ciphertext)` — and differs only in where the
//! version comes from (SGX counter tree, VAULT variable-arity leaves,
//! Morphable Counters). [`SealedStore`] factors that common layer so the
//! engines stay thin wrappers around their version stores, and so the
//! adversary surface (corrupt / capture / replay) is byte-identical
//! across baselines.

use std::collections::HashMap;
use toleo_crypto::mac::{MacKey, Tag56};
use toleo_crypto::modes::AesCtr;

/// A 64-byte cache block.
pub type Block = [u8; 64];

/// What the adversary can copy out of the store for one block: the
/// ciphertext and its MAC (either may be absent).
pub type BlockCapsule = (Option<Block>, Option<Tag56>);

/// Untrusted (ciphertext, MAC) storage with version-bound sealing.
#[derive(Debug)]
pub struct SealedStore {
    ctr: AesCtr,
    mac: MacKey,
    data: HashMap<u64, Block>,
    macs: HashMap<u64, Tag56>,
}

impl SealedStore {
    /// Creates a store sealing under the given data/MAC keys.
    pub fn new(data_key: &[u8; 16], mac_key: [u8; 16]) -> Self {
        SealedStore {
            ctr: AesCtr::new(data_key),
            mac: MacKey::new(mac_key),
            data: HashMap::new(),
            macs: HashMap::new(),
        }
    }

    /// Encrypts `plaintext` under `(version, addr)` and stores ciphertext
    /// + MAC.
    pub fn seal(&mut self, version: u64, addr: u64, plaintext: &Block) {
        let mut ct = *plaintext;
        self.ctr.apply(version, addr, &mut ct);
        let tag = self.mac.mac(version, addr, &ct);
        self.data.insert(addr, ct);
        self.macs.insert(addr, tag);
    }

    /// Verifies the MAC under `(version, addr)` and decrypts. Absent
    /// blocks read as zeros (the OS scrubs pages at allocation).
    ///
    /// # Errors
    ///
    /// `Err(())` on MAC mismatch — tampering or replay; the caller maps
    /// it to its scheme's integrity-violation error.
    #[allow(clippy::result_unit_err)]
    pub fn unseal(&self, version: u64, addr: u64) -> Result<Block, ()> {
        let ct = match self.data.get(&addr) {
            Some(c) => *c,
            None => return Ok([0u8; 64]),
        };
        let tag = self.macs.get(&addr).copied().unwrap_or_default();
        if !self.mac.mac(version, addr, &ct).verify(&tag) {
            return Err(());
        }
        let mut pt = ct;
        self.ctr.apply(version, addr, &mut pt);
        Ok(pt)
    }

    /// Re-encrypts a resident block from `old_version` to `new_version`
    /// (version-store reset walks: VAULT group resets, Morphable leaf
    /// re-bases). Absent blocks are skipped.
    ///
    /// # Errors
    ///
    /// `Err(())` if the resident block fails its MAC under `old_version`
    /// — an active tamper/replay caught *during* the reset walk.
    #[allow(clippy::result_unit_err)]
    pub fn reseal(&mut self, old_version: u64, new_version: u64, addr: u64) -> Result<(), ()> {
        if !self.data.contains_key(&addr) {
            return Ok(());
        }
        let pt = self.unseal(old_version, addr)?;
        self.seal(new_version, addr, &pt);
        Ok(())
    }

    /// Whether ciphertext is resident at `addr`.
    pub fn resident(&self, addr: u64) -> bool {
        self.data.contains_key(&addr)
    }

    /// Adversary hook: XOR `xor` into ciphertext byte `offset`. Returns
    /// `false` if nothing is resident.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 64`.
    pub fn corrupt(&mut self, addr: u64, offset: usize, xor: u8) -> bool {
        match self.data.get_mut(&addr) {
            Some(ct) => {
                // audit: allow(panic, documented adversary hook: offset >= 64 is a caller bug)
                ct[offset] ^= xor;
                true
            }
            None => false,
        }
    }

    /// Adversary hook: capture the (ciphertext, MAC) pair at `addr`.
    pub fn capture(&self, addr: u64) -> BlockCapsule {
        (self.data.get(&addr).copied(), self.macs.get(&addr).copied())
    }

    /// Adversary hook: restore a previously captured pair — the classic
    /// replay attack. Absent components clear the stored state.
    pub fn replay(&mut self, addr: u64, capsule: &BlockCapsule) {
        match capsule.0 {
            Some(d) => {
                self.data.insert(addr, d);
            }
            None => {
                self.data.remove(&addr);
            }
        }
        match capsule.1 {
            Some(t) => {
                self.macs.insert(addr, t);
            }
            None => {
                self.macs.remove(&addr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SealedStore {
        SealedStore::new(b"store-data-key!!", *b"store-mac-key!!!")
    }

    #[test]
    fn seal_unseal_roundtrip_and_zero_fill() {
        let mut s = store();
        s.seal(7, 0x40, &[9u8; 64]);
        assert_eq!(s.unseal(7, 0x40).unwrap(), [9u8; 64]);
        assert_eq!(s.unseal(1, 0x80).unwrap(), [0u8; 64]);
    }

    #[test]
    fn wrong_version_fails() {
        let mut s = store();
        s.seal(7, 0x40, &[9u8; 64]);
        assert!(s.unseal(8, 0x40).is_err());
    }

    #[test]
    fn reseal_moves_versions_and_detects_tamper() {
        let mut s = store();
        s.seal(1, 0x40, &[5u8; 64]);
        s.reseal(1, 2, 0x40).unwrap();
        assert_eq!(s.unseal(2, 0x40).unwrap(), [5u8; 64]);
        assert!(s.unseal(1, 0x40).is_err(), "old version must die");
        s.reseal(2, 3, 0x9000).unwrap(); // absent: no-op
        assert!(!s.resident(0x9000));
        assert!(s.corrupt(0x40, 13, 0x20));
        assert!(s.reseal(2, 3, 0x40).is_err(), "tamper caught mid-walk");
    }

    #[test]
    fn capture_replay_restores_stale_state() {
        let mut s = store();
        s.seal(1, 0x40, &[1u8; 64]);
        let stale = s.capture(0x40);
        s.seal(2, 0x40, &[2u8; 64]);
        s.replay(0x40, &stale);
        assert!(s.unseal(2, 0x40).is_err(), "stale MAC under new version");
        assert_eq!(s.unseal(1, 0x40).unwrap(), [1u8; 64]);
    }
}
