//! # toleo-baselines
//!
//! The protection schemes Toleo is evaluated against, built from scratch:
//!
//! * [`tree`] — a functional Merkle counter tree with MAC chains and a
//!   node cache: the freshness mechanism of client SGX, VAULT and
//!   Morphable Counters, and the scalability bottleneck Toleo removes.
//! * [`sgx`] — a client-SGX-style memory encryption engine (AES-CTR +
//!   MAC + counter tree over a bounded EPC) with adversary hooks.
//! * [`schemes`] — the Table 1 guarantee matrix and Table 4 version-size
//!   rows for every compared design (Client/Scalable SGX, VAULT,
//!   MorphCtr-128, InvisiMem, Toleo).
//! * [`vault`] — VAULT's variable-arity tree with small-counter overflow
//!   resets, plus the functional [`VaultEngine`].
//! * [`morph`] — Morphable Counters' uniform/skewed leaf encodings, plus
//!   the functional [`MorphEngine`].
//! * [`store`] — the shared sealed-block storage (AES-CTR + MAC + the
//!   corrupt/capture/replay adversary surface) the baseline engines wrap
//!   their version stores around.
//!
//! Every engine implements
//! [`ProtectedMemory`](toleo_core::protected::ProtectedMemory), so the
//! throughput harness and the security suite drive Toleo and the
//! baselines through one interface — same workloads, same batch entry
//! points, same tamper/replay corpus.
//!
//! The timing-level comparison (CI and InvisiMem configurations) lives in
//! `toleo-sim`, which models them as protection modes of the same node.
//!
//! ```
//! use toleo_baselines::sgx::SgxEngine;
//! use toleo_baselines::schemes::Scheme;
//!
//! let mut sgx = SgxEngine::new(128 << 20); // the classic 128 MB EPC
//! sgx.write(0, &[1u8; 64])?;
//! assert_eq!(sgx.read(0)?, [1u8; 64]);
//! assert_eq!(Scheme::ClientSgx.guarantees().freshness.to_string(), "Yes");
//! # Ok::<(), toleo_baselines::sgx::SgxError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod morph;
pub mod schemes;
pub mod sgx;
pub mod store;
pub mod tree;
pub mod vault;

pub use morph::MorphEngine;
pub use schemes::{Guarantees, Level, Scheme, VersionScheme};
pub use sgx::SgxEngine;
pub use tree::CounterTree;
pub use vault::VaultEngine;
