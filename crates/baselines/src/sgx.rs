//! Client-SGX-style memory encryption engine over a Merkle counter tree —
//! the functional baseline Toleo replaces.
//!
//! Data blocks are AES-CTR encrypted with their 56-bit version as nonce;
//! a MAC binds `(version, address, ciphertext)`; versions live in the
//! counter-tree leaves whose integrity chains up to an on-chip root. The
//! EPC (enclave page cache) is limited — accesses beyond it would page in
//! the real system; here the capacity limit is surfaced for the overhead
//! comparison in the ablation benches.

use crate::tree::{CounterTree, TreeError};
use std::collections::HashMap;
use toleo_crypto::mac::{MacKey, Tag56};
use toleo_crypto::modes::AesCtr;

/// Errors from the SGX-style engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgxError {
    /// MAC mismatch on data read — tampering or replay.
    IntegrityViolation {
        /// Block address.
        address: u64,
    },
    /// The counter tree detected tampering.
    Tree(TreeError),
    /// Address beyond the protected EPC.
    OutOfEpc {
        /// The offending address.
        address: u64,
    },
}

impl std::fmt::Display for SgxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SgxError::IntegrityViolation { address } => {
                write!(f, "sgx integrity check failed at {address:#x}")
            }
            SgxError::Tree(e) => write!(f, "sgx counter tree: {e}"),
            SgxError::OutOfEpc { address } => write!(f, "address {address:#x} outside the EPC"),
        }
    }
}

impl std::error::Error for SgxError {}

impl From<TreeError> for SgxError {
    fn from(e: TreeError) -> Self {
        SgxError::Tree(e)
    }
}

/// A client-SGX memory encryption engine protecting a fixed EPC.
///
/// # Examples
///
/// ```
/// use toleo_baselines::sgx::SgxEngine;
///
/// let mut sgx = SgxEngine::new(1 << 20); // 1 MB EPC
/// sgx.write(0x40, &[9u8; 64]).unwrap();
/// assert_eq!(sgx.read(0x40).unwrap(), [9u8; 64]);
/// ```
#[derive(Debug)]
pub struct SgxEngine {
    epc_bytes: u64,
    tree: CounterTree,
    ctr: AesCtr,
    mac: MacKey,
    data: HashMap<u64, [u8; 64]>,
    macs: HashMap<u64, Tag56>,
    /// Tree-node memory accesses accumulated (the Merkle overhead).
    pub tree_accesses: u64,
}

impl SgxEngine {
    /// Creates an engine protecting `epc_bytes` of memory (client SGX:
    /// 128 MB).
    pub fn new(epc_bytes: u64) -> Self {
        SgxEngine {
            epc_bytes,
            tree: CounterTree::new(8, epc_bytes / 64, 512),
            ctr: AesCtr::new(b"sgx-data-key 16B"),
            mac: MacKey::new(*b"sgx-mac-key 16B!"),
            data: HashMap::new(),
            macs: HashMap::new(),
            tree_accesses: 0,
        }
    }

    fn check(&self, addr: u64) -> Result<(), SgxError> {
        if addr >= self.epc_bytes {
            return Err(SgxError::OutOfEpc { address: addr });
        }
        Ok(())
    }

    /// Writes a block: bump the version in the tree, encrypt, MAC, store.
    ///
    /// # Errors
    ///
    /// [`SgxError::OutOfEpc`] beyond the EPC; tree errors if the tree was
    /// tampered with.
    ///
    /// # Panics
    ///
    /// Panics on unaligned addresses.
    pub fn write(&mut self, addr: u64, plaintext: &[u8; 64]) -> Result<(), SgxError> {
        assert_eq!(addr % 64, 0, "unaligned block write");
        self.check(addr)?;
        let walk = self.tree.update(addr / 64)?;
        self.tree_accesses += walk.memory_accesses as u64;
        let mut ct = *plaintext;
        self.ctr.apply(walk.version, addr, &mut ct);
        let tag = self.mac.mac(walk.version, addr, &ct);
        self.data.insert(addr, ct);
        self.macs.insert(addr, tag);
        Ok(())
    }

    /// Reads a block: verify the version path, check the MAC, decrypt.
    ///
    /// # Errors
    ///
    /// [`SgxError::IntegrityViolation`] on MAC mismatch (replay/tamper);
    /// tree errors on counter tampering; [`SgxError::OutOfEpc`] beyond the
    /// EPC.
    ///
    /// # Panics
    ///
    /// Panics on unaligned addresses.
    pub fn read(&mut self, addr: u64) -> Result<[u8; 64], SgxError> {
        assert_eq!(addr % 64, 0, "unaligned block read");
        self.check(addr)?;
        let walk = self.tree.verify(addr / 64)?;
        self.tree_accesses += walk.memory_accesses as u64;
        let ct = match self.data.get(&addr) {
            Some(c) => *c,
            None => return Ok([0u8; 64]),
        };
        let tag = self.macs.get(&addr).copied().unwrap_or_default();
        let expect = self.mac.mac(walk.version, addr, &ct);
        if !expect.verify(&tag) {
            return Err(SgxError::IntegrityViolation { address: addr });
        }
        let mut pt = ct;
        self.ctr.apply(walk.version, addr, &mut pt);
        Ok(pt)
    }

    /// Adversary hook: replay captures of (ciphertext, MAC).
    pub fn capture(&self, addr: u64) -> (Option<[u8; 64]>, Option<Tag56>) {
        (self.data.get(&addr).copied(), self.macs.get(&addr).copied())
    }

    /// Adversary hook: restore a stale capture.
    pub fn replay(&mut self, addr: u64, capsule: (Option<[u8; 64]>, Option<Tag56>)) {
        if let Some(d) = capsule.0 {
            self.data.insert(addr, d);
        }
        if let Some(t) = capsule.1 {
            self.macs.insert(addr, t);
        }
    }

    /// The counter tree (for tamper experiments).
    pub fn tree_mut(&mut self) -> &mut CounterTree {
        &mut self.tree
    }

    /// Depth of the integrity tree.
    pub fn tree_depth(&self) -> usize {
        self.tree.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sgx() -> SgxEngine {
        SgxEngine::new(1 << 20)
    }

    #[test]
    fn roundtrip_and_versioning() {
        let mut e = sgx();
        e.write(0, &[1u8; 64]).unwrap();
        e.write(0, &[2u8; 64]).unwrap();
        assert_eq!(e.read(0).unwrap(), [2u8; 64]);
    }

    #[test]
    fn replay_detected_via_tree() {
        let mut e = sgx();
        e.write(0x80, &[1u8; 64]).unwrap();
        let stale = e.capture(0x80);
        e.write(0x80, &[2u8; 64]).unwrap();
        e.replay(0x80, stale);
        // The tree's leaf version moved on, so the stale MAC mismatches.
        assert!(matches!(
            e.read(0x80),
            Err(SgxError::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn counter_tamper_detected() {
        let mut e = sgx();
        e.write(0x40, &[3u8; 64]).unwrap();
        let leaf_level = e.tree_depth() - 1;
        e.tree_mut().tamper_counter(leaf_level, 0, 1, 42);
        assert!(matches!(e.read(0x40), Err(SgxError::Tree(_))));
    }

    #[test]
    fn epc_limit_enforced() {
        let mut e = sgx();
        assert!(matches!(e.read(1 << 20), Err(SgxError::OutOfEpc { .. })));
        assert!(matches!(
            e.write(1 << 21, &[0u8; 64]),
            Err(SgxError::OutOfEpc { .. })
        ));
    }

    #[test]
    fn tree_accesses_accumulate() {
        let mut e = sgx();
        // Cold accesses walk uncached tree levels.
        e.write(0, &[0u8; 64]).unwrap();
        let after_first = e.tree_accesses;
        assert!(after_first > 0);
        // Warm repeat: cached path.
        e.write(0, &[1u8; 64]).unwrap();
        assert!(e.tree_accesses - after_first <= after_first);
    }

    #[test]
    fn unwritten_reads_zero() {
        let mut e = sgx();
        assert_eq!(e.read(0x100).unwrap(), [0u8; 64]);
    }

    #[test]
    fn error_display() {
        assert!(SgxError::OutOfEpc { address: 1 }
            .to_string()
            .contains("EPC"));
        assert!(SgxError::IntegrityViolation { address: 1 }
            .to_string()
            .contains("integrity"));
    }
}
