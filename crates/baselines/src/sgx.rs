//! Client-SGX-style memory encryption engine over a Merkle counter tree —
//! the functional baseline Toleo replaces.
//!
//! Data blocks are AES-CTR encrypted with their 56-bit version as nonce;
//! a MAC binds `(version, address, ciphertext)`; versions live in the
//! counter-tree leaves whose integrity chains up to an on-chip root. The
//! EPC (enclave page cache) is limited — accesses beyond it would page in
//! the real system; here the capacity limit is surfaced for the overhead
//! comparison in the ablation benches.

// audit: allow-file(indexing, tree level/node indices are bounded by the construction-time geometry)

use crate::store::{BlockCapsule, SealedStore};
use crate::tree::{CounterTree, TreeError};
use toleo_core::protected::{Capsule, MemoryBatchError, MemoryError, MemoryStats, ProtectedMemory};

/// Errors from the SGX-style engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgxError {
    /// MAC mismatch on data read — tampering or replay.
    IntegrityViolation {
        /// Block address.
        address: u64,
    },
    /// The counter tree detected tampering.
    Tree(TreeError),
    /// Address beyond the protected EPC.
    OutOfEpc {
        /// The offending address.
        address: u64,
    },
}

impl std::fmt::Display for SgxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SgxError::IntegrityViolation { address } => {
                write!(f, "sgx integrity check failed at {address:#x}")
            }
            SgxError::Tree(e) => write!(f, "sgx counter tree: {e}"),
            SgxError::OutOfEpc { address } => write!(f, "address {address:#x} outside the EPC"),
        }
    }
}

impl std::error::Error for SgxError {}

impl From<TreeError> for SgxError {
    fn from(e: TreeError) -> Self {
        SgxError::Tree(e)
    }
}

/// Failure of one operation inside an SGX-engine batch: the error plus
/// the batch index of the op that raised it. Ops before `index`
/// completed; ops after it were not attempted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SgxBatchError {
    /// Zero-based index of the failing operation within the batch.
    pub index: usize,
    /// What that operation failed with.
    pub error: SgxError,
}

impl std::fmt::Display for SgxBatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sgx batch op {}: {}", self.index, self.error)
    }
}

impl std::error::Error for SgxBatchError {}

fn to_memory_error(e: SgxError, address: u64) -> MemoryError {
    match e {
        SgxError::IntegrityViolation { address } => MemoryError::IntegrityViolation { address },
        // A tree-node MAC failure is version tampering/replay: surface it
        // as an integrity violation at the access that tripped it.
        SgxError::Tree(_) => MemoryError::IntegrityViolation { address },
        SgxError::OutOfEpc { address } => MemoryError::OutOfRange { address },
    }
}

/// A client-SGX memory encryption engine protecting a fixed EPC.
///
/// # Examples
///
/// ```
/// use toleo_baselines::sgx::SgxEngine;
///
/// let mut sgx = SgxEngine::new(1 << 20); // 1 MB EPC
/// sgx.write(0x40, &[9u8; 64]).unwrap();
/// assert_eq!(sgx.read(0x40).unwrap(), [9u8; 64]);
/// ```
#[derive(Debug)]
pub struct SgxEngine {
    epc_bytes: u64,
    tree: CounterTree,
    store: SealedStore,
    /// Tree-node memory accesses accumulated (the Merkle overhead).
    pub tree_accesses: u64,
    reads: u64,
    writes: u64,
}

impl SgxEngine {
    /// Creates an engine protecting `epc_bytes` of memory (client SGX:
    /// 128 MB).
    pub fn new(epc_bytes: u64) -> Self {
        SgxEngine {
            epc_bytes,
            tree: CounterTree::new(8, epc_bytes / 64, 512),
            store: SealedStore::new(b"sgx-data-key 16B", *b"sgx-mac-key 16B!"),
            tree_accesses: 0,
            reads: 0,
            writes: 0,
        }
    }

    fn check(&self, addr: u64) -> Result<(), SgxError> {
        if addr >= self.epc_bytes {
            return Err(SgxError::OutOfEpc { address: addr });
        }
        Ok(())
    }

    /// Writes a block: bump the version in the tree, encrypt, MAC, store.
    ///
    /// # Errors
    ///
    /// [`SgxError::OutOfEpc`] beyond the EPC; tree errors if the tree was
    /// tampered with.
    ///
    /// # Panics
    ///
    /// Panics on unaligned addresses.
    pub fn write(&mut self, addr: u64, plaintext: &[u8; 64]) -> Result<(), SgxError> {
        assert_eq!(addr % 64, 0, "unaligned block write");
        self.check(addr)?;
        let walk = self.tree.update(addr / 64)?;
        self.tree_accesses += walk.memory_accesses as u64;
        self.writes += 1;
        self.store.seal(walk.version, addr, plaintext);
        Ok(())
    }

    /// Reads a block: verify the version path, check the MAC, decrypt.
    ///
    /// # Errors
    ///
    /// [`SgxError::IntegrityViolation`] on MAC mismatch (replay/tamper);
    /// tree errors on counter tampering; [`SgxError::OutOfEpc`] beyond the
    /// EPC.
    ///
    /// # Panics
    ///
    /// Panics on unaligned addresses.
    pub fn read(&mut self, addr: u64) -> Result<[u8; 64], SgxError> {
        assert_eq!(addr % 64, 0, "unaligned block read");
        self.check(addr)?;
        let walk = self.tree.verify(addr / 64)?;
        self.tree_accesses += walk.memory_accesses as u64;
        self.reads += 1;
        self.store
            .unseal(walk.version, addr)
            .map_err(|()| SgxError::IntegrityViolation { address: addr })
    }

    /// Reads a batch of block-aligned addresses, observation-equivalent
    /// to per-address [`read`](Self::read) calls stopping at the first
    /// error, but with one shared tree walk per run of addresses whose
    /// versions live in the same leaf node
    /// ([`CounterTree::verify_run`]) — the only amortization a Merkle
    /// scheme can offer, and exactly what its `log(N)` walk denies to
    /// page-hopping streams.
    ///
    /// # Errors
    ///
    /// [`SgxBatchError`] carrying the failing index; ops past it were not
    /// attempted.
    ///
    /// # Panics
    ///
    /// Panics if any processed address is unaligned.
    pub fn read_batch(&mut self, addrs: &[u64]) -> Result<Vec<[u8; 64]>, SgxBatchError> {
        let mut out = Vec::with_capacity(addrs.len());
        let mut run: Vec<u64> = Vec::new();
        let mut i = 0usize;
        while i < addrs.len() {
            let j = self
                .collect_run(addrs, i, &mut run)
                .map_err(|(index, error)| SgxBatchError { index, error })?;
            let walk = self.tree.verify_run(&run).map_err(|e| SgxBatchError {
                index: i,
                error: e.into(),
            })?;
            self.tree_accesses += walk.memory_accesses as u64;
            for (k, &addr) in addrs[i..j].iter().enumerate() {
                // Count the read before unsealing, exactly as the per-op
                // loop does: the failing op itself counts, ops past it
                // do not.
                self.reads += 1;
                let block =
                    self.store
                        .unseal(walk.versions[k], addr)
                        .map_err(|()| SgxBatchError {
                            index: i + k,
                            error: SgxError::IntegrityViolation { address: addr },
                        })?;
                out.push(block);
            }
            i = j;
        }
        Ok(out)
    }

    /// Writes a batch of `(address, plaintext)` pairs, observation-
    /// equivalent to per-pair [`write`](Self::write) calls stopping at
    /// the first error, with one shared path verification + re-MAC per
    /// same-leaf run ([`CounterTree::update_run`]). Every op still bumps
    /// its counters at every tree level.
    ///
    /// # Errors
    ///
    /// [`SgxBatchError`] carrying the failing index.
    ///
    /// # Panics
    ///
    /// Panics if any processed address is unaligned.
    pub fn write_batch(&mut self, ops: &[(u64, [u8; 64])]) -> Result<(), SgxBatchError> {
        let addrs: Vec<u64> = ops.iter().map(|(a, _)| *a).collect();
        let mut run: Vec<u64> = Vec::new();
        let mut i = 0usize;
        while i < ops.len() {
            let j = self
                .collect_run(&addrs, i, &mut run)
                .map_err(|(index, error)| SgxBatchError { index, error })?;
            let walk = self.tree.update_run(&run).map_err(|e| SgxBatchError {
                index: i,
                error: e.into(),
            })?;
            self.tree_accesses += walk.memory_accesses as u64;
            self.writes += run.len() as u64;
            for (k, (addr, plaintext)) in ops[i..j].iter().enumerate() {
                self.store.seal(walk.versions[k], *addr, plaintext);
            }
            i = j;
        }
        Ok(())
    }

    /// Extends `run` with the maximal same-leaf run of *valid* block
    /// indices starting at `addrs[i]`, and returns the exclusive run
    /// end. An op that fails its bounds check *ends* the run before it
    /// rather than failing the whole run — the valid prefix must still
    /// be applied first ("ops before the failing index completed"), and
    /// the offender then errors at its own index as the first op of the
    /// next run.
    ///
    /// # Errors
    ///
    /// Only for `addrs[i]` itself (an empty run is never returned).
    fn collect_run(
        &self,
        addrs: &[u64],
        i: usize,
        run: &mut Vec<u64>,
    ) -> Result<usize, (usize, SgxError)> {
        run.clear();
        assert_eq!(addrs[i] % 64, 0, "unaligned block access");
        self.check(addrs[i]).map_err(|e| (i, e))?;
        let leaf = self.tree.leaf_of(addrs[i] / 64);
        let mut j = i;
        while j < addrs.len() && self.tree.leaf_of(addrs[j] / 64) == leaf {
            // An unaligned or out-of-EPC op ends the run; it panics or
            // errors at its own turn as the head of the next run, after
            // this run's valid prefix has been applied.
            if !addrs[j].is_multiple_of(64) || self.check(addrs[j]).is_err() {
                break;
            }
            run.push(addrs[j] / 64);
            j += 1;
        }
        Ok(j)
    }

    /// Adversary hook: replay captures of (ciphertext, MAC).
    pub fn capture(&self, addr: u64) -> BlockCapsule {
        self.store.capture(addr)
    }

    /// Adversary hook: restore a stale capture.
    pub fn replay(&mut self, addr: u64, capsule: BlockCapsule) {
        self.store.replay(addr, &capsule);
    }

    /// The counter tree (for tamper experiments).
    pub fn tree_mut(&mut self) -> &mut CounterTree {
        &mut self.tree
    }

    /// Depth of the integrity tree.
    pub fn tree_depth(&self) -> usize {
        self.tree.depth()
    }
}

impl ProtectedMemory for SgxEngine {
    fn scheme(&self) -> &'static str {
        "sgx-tree"
    }

    fn read(&mut self, addr: u64) -> Result<[u8; 64], MemoryError> {
        SgxEngine::read(self, addr).map_err(|e| to_memory_error(e, addr))
    }

    fn write(&mut self, addr: u64, data: &[u8; 64]) -> Result<(), MemoryError> {
        SgxEngine::write(self, addr, data).map_err(|e| to_memory_error(e, addr))
    }

    fn read_batch(&mut self, addrs: &[u64]) -> Result<Vec<[u8; 64]>, MemoryBatchError> {
        SgxEngine::read_batch(self, addrs).map_err(|e| MemoryBatchError {
            error: to_memory_error(e.error, addrs[e.index]),
            index: e.index,
        })
    }

    fn write_batch(&mut self, ops: &[(u64, [u8; 64])]) -> Result<(), MemoryBatchError> {
        SgxEngine::write_batch(self, ops).map_err(|e| MemoryBatchError {
            error: to_memory_error(e.error, ops[e.index].0),
            index: e.index,
        })
    }

    fn stats(&self) -> MemoryStats {
        MemoryStats {
            reads: self.reads,
            writes: self.writes,
            version_fetches: self.tree_accesses,
            // 64-bit tree counters never overflow in practice: client SGX
            // pays its cost in walk depth, not in reset storms.
            reencryption_events: 0,
        }
    }

    fn corrupt(&mut self, addr: u64, offset: usize, xor: u8) -> bool {
        self.store.corrupt(addr, offset, xor)
    }

    fn capture(&mut self, addr: u64) -> Capsule {
        Capsule::new(addr, SgxEngine::capture(self, addr))
    }

    fn replay(&mut self, capsule: &Capsule) -> bool {
        match capsule.state::<BlockCapsule>() {
            Some(c) => {
                self.store.replay(capsule.address(), c);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sgx() -> SgxEngine {
        SgxEngine::new(1 << 20)
    }

    #[test]
    fn roundtrip_and_versioning() {
        let mut e = sgx();
        e.write(0, &[1u8; 64]).unwrap();
        e.write(0, &[2u8; 64]).unwrap();
        assert_eq!(e.read(0).unwrap(), [2u8; 64]);
    }

    #[test]
    fn replay_detected_via_tree() {
        let mut e = sgx();
        e.write(0x80, &[1u8; 64]).unwrap();
        let stale = e.capture(0x80);
        e.write(0x80, &[2u8; 64]).unwrap();
        e.replay(0x80, stale);
        // The tree's leaf version moved on, so the stale MAC mismatches.
        assert!(matches!(
            e.read(0x80),
            Err(SgxError::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn counter_tamper_detected() {
        let mut e = sgx();
        e.write(0x40, &[3u8; 64]).unwrap();
        let leaf_level = e.tree_depth() - 1;
        e.tree_mut().tamper_counter(leaf_level, 0, 1, 42);
        assert!(matches!(e.read(0x40), Err(SgxError::Tree(_))));
    }

    #[test]
    fn epc_limit_enforced() {
        let mut e = sgx();
        assert!(matches!(e.read(1 << 20), Err(SgxError::OutOfEpc { .. })));
        assert!(matches!(
            e.write(1 << 21, &[0u8; 64]),
            Err(SgxError::OutOfEpc { .. })
        ));
    }

    #[test]
    fn tree_accesses_accumulate() {
        let mut e = sgx();
        // Cold accesses walk uncached tree levels.
        e.write(0, &[0u8; 64]).unwrap();
        let after_first = e.tree_accesses;
        assert!(after_first > 0);
        // Warm repeat: cached path.
        e.write(0, &[1u8; 64]).unwrap();
        assert!(e.tree_accesses - after_first <= after_first);
    }

    #[test]
    fn unwritten_reads_zero() {
        let mut e = sgx();
        assert_eq!(e.read(0x100).unwrap(), [0u8; 64]);
    }

    #[test]
    fn batch_paths_match_singles() {
        let mut singles = sgx();
        let mut batched = sgx();
        // Mixed-leaf stream: runs of 8 blocks share a leaf, with repeats.
        let ops: Vec<(u64, [u8; 64])> = (0..64u64)
            .map(|i| (((i % 24) * 64), [i as u8; 64]))
            .collect();
        for (a, d) in &ops {
            singles.write(*a, d).unwrap();
        }
        batched.write_batch(&ops).unwrap();
        let addrs: Vec<u64> = ops.iter().map(|(a, _)| *a).collect();
        let single_out: Vec<[u8; 64]> = addrs.iter().map(|a| singles.read(*a).unwrap()).collect();
        let batch_out = batched.read_batch(&addrs).unwrap();
        assert_eq!(batch_out, single_out);
        assert_eq!(singles.reads, batched.reads);
        assert_eq!(singles.writes, batched.writes);
        // The shared walk must not cost MORE accesses than per-op walks.
        assert!(batched.tree_accesses <= singles.tree_accesses);
        // And the trees agree on every version afterwards.
        for a in &addrs {
            assert_eq!(
                singles.tree_mut().verify(a / 64).unwrap().version,
                batched.tree_mut().verify(a / 64).unwrap().version
            );
        }
    }

    #[test]
    fn batch_reports_failing_index() {
        let mut e = sgx();
        e.write_batch(&[(0, [1u8; 64]), (64, [2u8; 64])]).unwrap();
        let stale = e.capture(64);
        e.write(64, &[3u8; 64]).unwrap();
        e.replay(64, stale);
        let err = e.read_batch(&[0, 64, 128]).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(matches!(
            err.error,
            SgxError::IntegrityViolation { address: 64 }
        ));
        // Out-of-EPC op mid-batch reports its own index.
        let err = e
            .write_batch(&[(0, [0u8; 64]), (1 << 21, [0u8; 64])])
            .unwrap_err();
        assert_eq!(err.index, 1);
        assert!(matches!(err.error, SgxError::OutOfEpc { .. }));
    }

    #[test]
    fn failed_batch_still_applies_the_valid_prefix_of_a_run() {
        // Regression: an out-of-EPC op that shares a leaf with earlier
        // valid ops must not discard them — "ops before the failing
        // index completed". 6400-byte EPC = 100 blocks, so block 100 is
        // out of range but shares leaf 12 (arity 8) with blocks 96..100.
        let mut e = SgxEngine::new(6400);
        let err = e
            .write_batch(&[(96 * 64, [0xA1u8; 64]), (100 * 64, [0xA2u8; 64])])
            .unwrap_err();
        assert_eq!(err.index, 1);
        assert!(matches!(err.error, SgxError::OutOfEpc { .. }));
        // The valid prefix landed, exactly as a per-op loop would leave it.
        assert_eq!(e.read(96 * 64).unwrap(), [0xA1u8; 64]);
        // Same shape on the read side.
        let err = e.read_batch(&[96 * 64, 100 * 64]).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(matches!(err.error, SgxError::OutOfEpc { .. }));
    }

    #[test]
    fn failed_batch_read_counts_stats_like_the_per_op_loop() {
        // Regression: a mid-run MAC failure must count reads only up to
        // and including the failing op, matching singles stopping at the
        // first error.
        let mut batched = sgx();
        let mut singles = sgx();
        for e in [&mut batched, &mut singles] {
            for b in 0..3u64 {
                e.write(b * 64, &[b as u8; 64]).unwrap();
            }
            let stale = SgxEngine::capture(e, 64);
            e.write(64, &[9u8; 64]).unwrap();
            e.replay(64, stale);
        }
        let err = batched.read_batch(&[0, 64, 128]).unwrap_err();
        assert_eq!(err.index, 1);
        for addr in [0u64, 64, 128] {
            if singles.read(addr).is_err() {
                break;
            }
        }
        assert_eq!(batched.reads, singles.reads, "failing-op read counts");
        assert_eq!(batched.writes, singles.writes);
    }

    #[test]
    fn epc_boundary_read_write() {
        // The last in-EPC block round-trips through single and batch
        // paths; the first out-of-EPC block fails both without touching
        // engine state.
        let epc = 1u64 << 20;
        let mut e = SgxEngine::new(epc);
        let last = epc - 64;
        e.write(last, &[0xEEu8; 64]).unwrap();
        assert_eq!(e.read(last).unwrap(), [0xEEu8; 64]);
        e.write_batch(&[(last, [0xDDu8; 64])]).unwrap();
        assert_eq!(e.read_batch(&[last]).unwrap(), vec![[0xDDu8; 64]]);
        let writes_before = e.writes;
        assert!(matches!(
            e.write(epc, &[0u8; 64]),
            Err(SgxError::OutOfEpc { address }) if address == epc
        ));
        assert!(matches!(e.read(epc), Err(SgxError::OutOfEpc { .. })));
        assert_eq!(e.writes, writes_before, "rejected op must not count");
    }

    #[test]
    fn error_display() {
        assert!(SgxError::OutOfEpc { address: 1 }
            .to_string()
            .contains("EPC"));
        assert!(SgxError::IntegrityViolation { address: 1 }
            .to_string()
            .contains("integrity"));
    }
}
