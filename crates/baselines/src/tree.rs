//! A functional Merkle counter tree — the mechanism client SGX, VAULT and
//! Morphable Counters use to protect version-number freshness, and the
//! scalability bottleneck Toleo eliminates.
//!
//! Every leaf holds the version counters of a run of data blocks; every
//! internal node holds per-child counters plus a MAC computed over the
//! children's counters keyed by the node's own counter. The root counter
//! lives in trusted on-chip storage. Verifying one data block's version
//! requires walking root→leaf and checking each MAC; updating requires
//! bumping a counter at every level. Both costs grow with `log_arity(N)`,
//! which is why the approach cannot scale to tera-scale memory (§1).

// audit: allow-file(indexing, level/index pairs come from path() and parent arithmetic, bounded by the tree geometry)

use toleo_core::cache::SetAssocCache;
use toleo_crypto::mac::{MacKey, Tag56};

/// Errors from tree verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A node MAC failed: the stored counters were tampered with or
    /// replayed.
    NodeTampered {
        /// Tree level (0 = children of the root).
        level: usize,
        /// Node index within its level.
        index: usize,
    },
    /// Block index beyond the protected range.
    OutOfRange {
        /// The offending block index.
        block: u64,
    },
    /// A batch entry point was handed an empty run of blocks.
    EmptyRun,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::NodeTampered { level, index } => {
                write!(
                    f,
                    "counter-tree node {index} at level {level} failed its MAC"
                )
            }
            TreeError::OutOfRange { block } => write!(f, "block {block} outside the tree"),
            TreeError::EmptyRun => write!(f, "empty run of blocks"),
        }
    }
}

impl std::error::Error for TreeError {}

/// One tree node: per-child counters and a MAC binding them to this node's
/// counter in the parent. Everything here lives in *untrusted* memory.
#[derive(Debug, Clone)]
struct TreeNode {
    counters: Vec<u64>,
    tag: Tag56,
}

/// Result of a verified walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// The data block's version counter.
    pub version: u64,
    /// Memory accesses performed (nodes fetched from untrusted memory,
    /// after cache filtering).
    pub memory_accesses: u32,
}

/// Result of a batched walk over a run of blocks sharing one leaf: the
/// root→leaf path is verified (and, for updates, re-MACed) **once** for
/// the whole run, which is the only amortization a Merkle scheme can
/// legally claim — every op still pays its counter bump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunWalk {
    /// Per-op version counters, in run order. For an update run these are
    /// the post-increment values (successive writes to one block see
    /// successive versions).
    pub versions: Vec<u64>,
    /// Memory accesses performed for the single shared path walk.
    pub memory_accesses: u32,
}

/// A functional Merkle counter tree with a node cache.
///
/// # Examples
///
/// ```
/// use toleo_baselines::tree::CounterTree;
///
/// let mut tree = CounterTree::new(8, 4096, 64);
/// let v0 = tree.verify(17).unwrap().version;
/// tree.update(17).unwrap();
/// assert_eq!(tree.verify(17).unwrap().version, v0 + 1);
/// ```
// audit: allow(secret, MacKey's manual Debug impl already redacts the key)
#[derive(Debug)]
pub struct CounterTree {
    arity: usize,
    blocks: u64,
    /// levels[0] = children of the root ... levels.last() = leaves.
    levels: Vec<Vec<TreeNode>>,
    /// The trusted root counters (always on chip).
    root_counters: Vec<u64>,
    mac_key: MacKey,
    /// On-chip metadata cache over (level, index) node keys.
    cache: SetAssocCache,
}

impl CounterTree {
    /// Builds a tree of the given `arity` protecting `blocks` data blocks
    /// with a node cache of `cache_nodes` entries.
    ///
    /// # Panics
    ///
    /// Panics if `arity < 2` or `blocks == 0`.
    pub fn new(arity: usize, blocks: u64, cache_nodes: usize) -> Self {
        assert!(arity >= 2, "arity must be at least 2");
        assert!(blocks > 0, "must protect at least one block");
        let mac_key = MacKey::new([0x7au8; 16]);
        // Build level sizes bottom-up: leaves hold `arity` block counters.
        let mut level_nodes = Vec::new();
        let mut n = blocks.div_ceil(arity as u64);
        loop {
            level_nodes.push(n);
            if n <= arity as u64 {
                break;
            }
            n = n.div_ceil(arity as u64);
        }
        level_nodes.reverse(); // now top-down
        let levels: Vec<Vec<TreeNode>> = level_nodes
            .iter()
            .map(|&count| {
                (0..count)
                    .map(|_| TreeNode {
                        counters: vec![0; arity],
                        tag: Tag56::default(),
                    })
                    .collect()
            })
            .collect();
        let root_counters = vec![0; arity];
        let mut tree = CounterTree {
            arity,
            blocks,
            levels,
            root_counters,
            mac_key,
            cache: SetAssocCache::new((cache_nodes / 8).max(1), 8),
        };
        // Seal every node with an initial MAC.
        for level in 0..tree.levels.len() {
            for index in 0..tree.levels[level].len() {
                let parent_ctr = tree.parent_counter(level, index);
                let tag = tree.node_mac(level, index, parent_ctr);
                tree.levels[level][index].tag = tag;
            }
        }
        tree
    }

    /// Number of levels below the root.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Children per node — the run width over which batched walks can
    /// share one path verification.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The leaf node index covering `block` (blocks with equal leaf
    /// indices share a batched walk).
    pub fn leaf_of(&self, block: u64) -> u64 {
        block / self.arity as u64
    }

    /// Total bytes of tree metadata in untrusted memory (counters + MACs),
    /// assuming 8-byte counters and 7-byte MACs.
    pub fn metadata_bytes(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.len() as u64 * (self.arity as u64 * 8 + 7))
            .sum()
    }

    fn parent_counter(&self, level: usize, index: usize) -> u64 {
        if level == 0 {
            self.root_counters[index % self.arity]
        } else {
            let parent = &self.levels[level - 1][index / self.arity];
            parent.counters[index % self.arity]
        }
    }

    fn node_mac(&self, level: usize, index: usize, parent_counter: u64) -> Tag56 {
        let node = &self.levels[level][index];
        let mut bytes = Vec::with_capacity(node.counters.len() * 8);
        for c in &node.counters {
            bytes.extend_from_slice(&c.to_le_bytes());
        }
        self.mac_key
            .mac(parent_counter, (level as u64) << 32 | index as u64, &bytes)
    }

    fn path(&self, block: u64) -> Vec<(usize, usize)> {
        // Walk bottom-up computing node indices, then reverse.
        let mut path = Vec::with_capacity(self.depth());
        let mut idx = (block / self.arity as u64) as usize;
        for level in (0..self.depth()).rev() {
            path.push((level, idx));
            idx /= self.arity;
        }
        path.reverse();
        path
    }

    /// Verifies the MAC chain root→leaf and returns the block's version.
    ///
    /// # Errors
    ///
    /// [`TreeError::NodeTampered`] if any node MAC fails;
    /// [`TreeError::OutOfRange`] for blocks outside the tree.
    pub fn verify(&mut self, block: u64) -> Result<WalkResult, TreeError> {
        if block >= self.blocks {
            return Err(TreeError::OutOfRange { block });
        }
        let mut accesses = 0u32;
        for (level, index) in self.path(block) {
            let key = ((level as u64) << 48) | index as u64;
            if !self.cache.access(key) {
                accesses += 1;
            }
            let expect = self.node_mac(level, index, self.parent_counter(level, index));
            if !expect.verify(&self.levels[level][index].tag) {
                return Err(TreeError::NodeTampered { level, index });
            }
        }
        let leaf = &self.levels[self.depth() - 1][(block / self.arity as u64) as usize];
        Ok(WalkResult {
            version: leaf.counters[(block % self.arity as u64) as usize],
            memory_accesses: accesses,
        })
    }

    /// Increments the block's version, re-MACing every node on the path.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`verify`](Self::verify) — an update first
    /// verifies the existing path.
    pub fn update(&mut self, block: u64) -> Result<WalkResult, TreeError> {
        let verified = self.verify(block)?;
        let path = self.path(block);
        // Bump the counter at every level (root counter included), then
        // re-MAC bottom-up.
        let (_, top_index) = path[0];
        self.root_counters[top_index % self.arity] += 1;
        for w in path.windows(2) {
            let (_, index) = w[1];
            let (plevel, pindex) = w[0];
            let child_slot = index % self.arity;
            self.levels[plevel][pindex].counters[child_slot] += 1;
        }
        let (leaf_level, leaf_index) = (self.depth() - 1, self.leaf_of(block) as usize);
        let slot = (block % self.arity as u64) as usize;
        self.levels[leaf_level][leaf_index].counters[slot] += 1;
        for &(level, index) in path.iter().rev() {
            let parent_ctr = self.parent_counter(level, index);
            let tag = self.node_mac(level, index, parent_ctr);
            self.levels[level][index].tag = tag;
        }
        Ok(WalkResult {
            version: verified.version + 1,
            memory_accesses: verified.memory_accesses,
        })
    }

    /// Verifies the MAC chain **once** for a run of blocks sharing one
    /// leaf node and returns every block's version — the read-side batch
    /// path of the SGX-style engine. Observation-equivalent to per-block
    /// [`verify`](Self::verify) calls (which would each walk the now-hot
    /// cached path) but without the redundant MAC recomputations.
    ///
    /// # Errors
    ///
    /// As [`verify`](Self::verify), plus [`TreeError::EmptyRun`] for an
    /// empty `run`.
    ///
    /// # Panics
    ///
    /// Panics if the blocks do not all share a leaf.
    pub fn verify_run(&mut self, run: &[u64]) -> Result<RunWalk, TreeError> {
        let Some(&first) = run.first() else {
            return Err(TreeError::EmptyRun);
        };
        for b in run {
            if *b >= self.blocks {
                return Err(TreeError::OutOfRange { block: *b });
            }
            assert_eq!(self.leaf_of(*b), self.leaf_of(first), "run spans leaves");
        }
        let walk = self.verify(first)?;
        let leaf = &self.levels[self.depth() - 1][self.leaf_of(first) as usize];
        let versions = run
            .iter()
            .map(|b| leaf.counters[(b % self.arity as u64) as usize])
            .collect();
        Ok(RunWalk {
            versions,
            memory_accesses: walk.memory_accesses,
        })
    }

    /// Increments the versions of a run of blocks sharing one leaf,
    /// verifying the existing path once and re-MACing every node on it
    /// once — the write-side batch path. Counter state afterwards is
    /// identical to per-block [`update`](Self::update) calls: every op
    /// still bumps the counter at every level (versions are per-write,
    /// not per-run).
    ///
    /// # Errors
    ///
    /// As [`update`](Self::update), plus [`TreeError::EmptyRun`] for an
    /// empty `run`.
    ///
    /// # Panics
    ///
    /// Panics if the blocks do not all share a leaf.
    pub fn update_run(&mut self, run: &[u64]) -> Result<RunWalk, TreeError> {
        let Some(&first) = run.first() else {
            return Err(TreeError::EmptyRun);
        };
        for b in run {
            if *b >= self.blocks {
                return Err(TreeError::OutOfRange { block: *b });
            }
            assert_eq!(self.leaf_of(*b), self.leaf_of(first), "run spans leaves");
        }
        let walk = self.verify(first)?;
        let path = self.path(first);
        let (_, top_index) = path[0];
        let (leaf_level, leaf_index) = (self.depth() - 1, self.leaf_of(first) as usize);
        let mut versions = Vec::with_capacity(run.len());
        for b in run {
            self.root_counters[top_index % self.arity] += 1;
            for w in path.windows(2) {
                let (_, index) = w[1];
                let (plevel, pindex) = w[0];
                self.levels[plevel][pindex].counters[index % self.arity] += 1;
            }
            let slot = (b % self.arity as u64) as usize;
            self.levels[leaf_level][leaf_index].counters[slot] += 1;
            versions.push(self.levels[leaf_level][leaf_index].counters[slot]);
        }
        for &(level, index) in path.iter().rev() {
            let parent_ctr = self.parent_counter(level, index);
            let tag = self.node_mac(level, index, parent_ctr);
            self.levels[level][index].tag = tag;
        }
        Ok(RunWalk {
            versions,
            memory_accesses: walk.memory_accesses,
        })
    }

    /// Adversary hook: overwrite a stored counter in untrusted memory.
    /// Subsequent verification of any block under this node must fail.
    pub fn tamper_counter(&mut self, level: usize, index: usize, slot: usize, value: u64) {
        self.levels[level][index].counters[slot] = value;
    }

    /// Adversary hook: capture a leaf node (counters + MAC) for replay.
    pub fn capture_leaf(&self, block: u64) -> (Vec<u64>, Tag56) {
        let leaf = &self.levels[self.depth() - 1][(block / self.arity as u64) as usize];
        (leaf.counters.clone(), leaf.tag)
    }

    /// Adversary hook: replay a previously captured leaf.
    pub fn replay_leaf(&mut self, block: u64, capsule: (Vec<u64>, Tag56)) {
        let depth = self.depth();
        let leaf = &mut self.levels[depth - 1][(block / self.arity as u64) as usize];
        leaf.counters = capsule.0;
        leaf.tag = capsule.1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> CounterTree {
        CounterTree::new(8, 4096, 64)
    }

    #[test]
    fn depth_grows_logarithmically() {
        assert_eq!(CounterTree::new(8, 8, 4).depth(), 1);
        assert_eq!(CounterTree::new(8, 64, 4).depth(), 1); // 8 leaves under root
        assert_eq!(CounterTree::new(8, 512, 4).depth(), 2);
        // 8-ary over 2^21 blocks (128 MB EPC): 6 tree levels; with the MAC
        // fetch that is the paper's "up to 7 additional accesses" (§1).
        assert_eq!(CounterTree::new(8, 1 << 21, 4).depth(), 6);
        // 28 TB: ~13 levels (paper: "13 accesses for 28 TB memory").
        let blocks_28tb = 28u64 << 40 >> 6;
        let depth = (blocks_28tb as f64).log(8.0).ceil() as usize;
        assert!(depth >= 13, "28 TB needs {depth} levels");
    }

    #[test]
    fn verify_and_update_roundtrip() {
        let mut t = tree();
        assert_eq!(t.verify(0).unwrap().version, 0);
        t.update(0).unwrap();
        t.update(0).unwrap();
        assert_eq!(t.verify(0).unwrap().version, 2);
        assert_eq!(t.verify(1).unwrap().version, 0, "neighbours unaffected");
    }

    #[test]
    fn updates_touch_all_levels() {
        let mut t = tree();
        // After an update, every node on the path has fresh MACs that still
        // verify.
        t.update(100).unwrap();
        for b in [100u64, 101, 99, 0, 4095] {
            assert!(t.verify(b).is_ok(), "block {b}");
        }
    }

    #[test]
    fn tampered_leaf_counter_detected() {
        let mut t = tree();
        t.update(9).unwrap();
        let leaf_level = t.depth() - 1;
        t.tamper_counter(leaf_level, 1, 1, 999); // block 9 lives at leaf 1 slot 1
        assert!(matches!(t.verify(9), Err(TreeError::NodeTampered { .. })));
    }

    #[test]
    fn tampered_internal_counter_detected() {
        let mut t = tree();
        t.update(9).unwrap();
        t.tamper_counter(0, 0, 0, 7);
        assert!(matches!(t.verify(9), Err(TreeError::NodeTampered { .. })));
    }

    #[test]
    fn replayed_leaf_detected() {
        let mut t = tree();
        t.update(5).unwrap();
        let stale = t.capture_leaf(5);
        t.update(5).unwrap(); // version moves on; parent counters change
        t.replay_leaf(5, stale);
        // The stale leaf's MAC was computed under an older parent counter.
        assert!(matches!(t.verify(5), Err(TreeError::NodeTampered { .. })));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut t = tree();
        assert!(matches!(t.verify(4096), Err(TreeError::OutOfRange { .. })));
        assert!(matches!(
            t.update(u64::MAX),
            Err(TreeError::OutOfRange { .. })
        ));
    }

    #[test]
    fn cache_reduces_walk_accesses() {
        let mut t = tree();
        let cold = t.verify(7).unwrap().memory_accesses;
        let warm = t.verify(7).unwrap().memory_accesses;
        assert!(cold > 0);
        assert_eq!(warm, 0, "fully cached path costs no memory accesses");
        assert!(cold as usize <= t.depth());
    }

    #[test]
    fn metadata_overhead_grows_with_size() {
        let small = CounterTree::new(8, 1 << 10, 4).metadata_bytes();
        let large = CounterTree::new(8, 1 << 16, 4).metadata_bytes();
        assert!(large > 32 * small);
    }

    #[test]
    fn run_walks_match_per_op_walks() {
        // Same op stream through update()/verify() singles and through
        // the batched run paths must leave identical counter state and
        // report identical versions.
        let mut singles = tree();
        let mut batched = tree();
        // Blocks 8..16 share leaf 1 (arity 8); repeat some blocks.
        let run: Vec<u64> = vec![8, 9, 8, 15, 8, 9];
        let mut single_versions = Vec::new();
        for b in &run {
            single_versions.push(singles.update(*b).unwrap().version);
        }
        let batch = batched.update_run(&run).unwrap();
        assert_eq!(batch.versions, single_versions);
        let verify_batch = batched.verify_run(&run).unwrap();
        for (k, b) in run.iter().enumerate() {
            assert_eq!(
                verify_batch.versions[k],
                singles.verify(*b).unwrap().version,
                "block {b}"
            );
        }
        // Every other block in both trees still verifies identically.
        for b in [0u64, 7, 16, 4095] {
            assert_eq!(
                singles.verify(b).unwrap().version,
                batched.verify(b).unwrap().version
            );
        }
    }

    #[test]
    fn run_walk_detects_tamper_and_range() {
        let mut t = tree();
        t.update_run(&[8, 9]).unwrap();
        assert!(matches!(
            t.verify_run(&[4096]),
            Err(TreeError::OutOfRange { .. })
        ));
        let leaf_level = t.depth() - 1;
        t.tamper_counter(leaf_level, 1, 0, 99);
        assert!(matches!(
            t.verify_run(&[8, 9]),
            Err(TreeError::NodeTampered { .. })
        ));
        assert!(matches!(
            t.update_run(&[8, 9]),
            Err(TreeError::NodeTampered { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "run spans leaves")]
    fn run_walk_rejects_cross_leaf_runs() {
        let mut t = tree();
        let _ = t.verify_run(&[7, 8]); // leaf 0 and leaf 1
    }

    #[test]
    fn error_display() {
        assert!(TreeError::NodeTampered { level: 1, index: 2 }
            .to_string()
            .contains("MAC"));
        assert!(TreeError::OutOfRange { block: 5 }
            .to_string()
            .contains("outside"));
    }
}
