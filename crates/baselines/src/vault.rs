//! VAULT-style variable-arity counter tree (Taassori et al., ASPLOS'18).
//!
//! VAULT increases tree arity by shrinking per-child counters as one moves
//! toward the leaves: a 64-byte node packs a few large counters near the
//! root but 16–64 small counters at the leaves, so the tree is shallower
//! than SGX's 8-ary tree for the same protected size. Small counters
//! overflow quickly; an overflow forces a *node reset*: all sibling
//! counters re-base and every covered block must be re-MACed (modelled
//! here as a re-encryption count).

/// Per-level geometry: how many counters one 64-byte node packs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelSpec {
    /// Children per node at this level.
    pub arity: usize,
    /// Counter width in bits.
    pub counter_bits: u32,
}

/// A VAULT tree's shape and cost model.
#[derive(Debug, Clone)]
pub struct VaultTree {
    levels: Vec<LevelSpec>,
    blocks: u64,
    /// Leaf counters (functional state; indexes follow block order).
    leaf_counters: Vec<u64>,
    /// Re-encryptions forced by counter overflows.
    pub overflow_resets: u64,
}

impl VaultTree {
    /// The paper's VAULT geometry: 64-ary leaves with 6-bit counters,
    /// 32-ary mid levels (12-bit), 16-ary upper levels (25-bit).
    pub fn paper_geometry() -> Vec<LevelSpec> {
        vec![
            LevelSpec {
                arity: 16,
                counter_bits: 25,
            },
            LevelSpec {
                arity: 32,
                counter_bits: 12,
            },
            LevelSpec {
                arity: 64,
                counter_bits: 6,
            },
        ]
    }

    /// Builds a tree protecting `blocks` cache blocks with the given
    /// geometry (last entry = leaf level; it repeats as needed).
    ///
    /// # Panics
    ///
    /// Panics if `geometry` is empty or `blocks == 0`.
    pub fn new(geometry: Vec<LevelSpec>, blocks: u64) -> Self {
        assert!(
            !geometry.is_empty(),
            "geometry must have at least one level"
        );
        assert!(blocks > 0, "must protect at least one block");
        VaultTree {
            levels: geometry,
            blocks,
            leaf_counters: vec![0; blocks as usize],
            overflow_resets: 0,
        }
    }

    /// Depth of the tree for the protected size (levels needed so the
    /// product of arities covers all blocks).
    pub fn depth(&self) -> usize {
        let mut covered = 1u64;
        let mut depth = 0;
        // Repeat the leaf level's arity for deep trees.
        loop {
            let spec = self.levels[self
                .levels
                .len()
                .saturating_sub(depth + 1)
                .min(self.levels.len() - 1)];
            covered = covered.saturating_mul(spec.arity as u64);
            depth += 1;
            if covered >= self.blocks {
                return depth;
            }
        }
    }

    /// Leaf data-to-version ratio: one 64-byte leaf node covers
    /// `arity * 64` bytes of data (the paper's Table 4 "VAULT (Leaf)"
    /// row: 64 B protects 4 KB = 64:1).
    pub fn leaf_ratio(&self) -> f64 {
        let leaf = self.levels.last().expect("non-empty");
        (leaf.arity * 64) as f64 / 64.0
    }

    /// Records a write to `block`, bumping its leaf counter. Returns the
    /// number of blocks that had to be re-encrypted (0 in the common case,
    /// `arity` when the small counter overflowed and the node re-based).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn update(&mut self, block: u64) -> u64 {
        assert!(block < self.blocks, "block out of range");
        let leaf = *self.levels.last().expect("non-empty");
        let max = (1u64 << leaf.counter_bits) - 1;
        let ctr = &mut self.leaf_counters[block as usize];
        if *ctr >= max {
            // Overflow: re-base all siblings, re-encrypt the whole group.
            self.overflow_resets += 1;
            let group = (block as usize / leaf.arity) * leaf.arity;
            let end = (group + leaf.arity).min(self.leaf_counters.len());
            for c in &mut self.leaf_counters[group..end] {
                *c = 0;
            }
            self.leaf_counters[block as usize] = 1;
            return (end - group) as u64;
        }
        *ctr += 1;
        0
    }

    /// The current counter of a block.
    pub fn counter(&self, block: u64) -> u64 {
        self.leaf_counters[block as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vault(blocks: u64) -> VaultTree {
        VaultTree::new(VaultTree::paper_geometry(), blocks)
    }

    #[test]
    fn leaf_ratio_is_64_to_1() {
        assert!((vault(1024).leaf_ratio() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn depth_shallower_than_8ary() {
        // 2^21 blocks (128 MB): VAULT with 64/32/16 arity needs fewer
        // levels than the 8-ary SGX tree's 6.
        let v = vault(1 << 21);
        assert!(v.depth() < 6, "vault depth {}", v.depth());
    }

    #[test]
    fn updates_count() {
        let mut v = vault(256);
        v.update(7);
        v.update(7);
        assert_eq!(v.counter(7), 2);
        assert_eq!(v.overflow_resets, 0);
    }

    #[test]
    fn overflow_rebases_group() {
        let mut v = vault(256);
        // 6-bit leaf counters overflow at 63.
        for _ in 0..63 {
            assert_eq!(v.update(0), 0);
        }
        let reencrypted = v.update(0);
        assert_eq!(reencrypted, 64, "whole 64-block group re-encrypted");
        assert_eq!(v.overflow_resets, 1);
        assert_eq!(v.counter(0), 1);
        assert_eq!(v.counter(1), 0);
    }

    #[test]
    fn hot_blocks_cause_frequent_overflow() {
        // The VAULT weakness Toleo's uneven format avoids: one hot block
        // forces group-wide re-encryption every 63 writes.
        let mut v = vault(256);
        let mut reenc = 0;
        for _ in 0..1000 {
            reenc += v.update(0);
        }
        assert!(
            reenc >= 15 * 64,
            "re-encrypted {reenc} blocks for 1000 writes"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        vault(16).update(16);
    }
}
