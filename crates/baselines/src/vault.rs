//! VAULT-style variable-arity counter tree (Taassori et al., ASPLOS'18).
//!
//! VAULT increases tree arity by shrinking per-child counters as one moves
//! toward the leaves: a 64-byte node packs a few large counters near the
//! root but 16–64 small counters at the leaves, so the tree is shallower
//! than SGX's 8-ary tree for the same protected size. Small counters
//! overflow quickly; an overflow forces a *node reset*: all sibling
//! counters re-base and every covered block must be re-MACed (modelled
//! here as a re-encryption count).
//!
//! [`VaultEngine`] wraps the tree in a functional protection engine
//! (AES-CTR + MAC over a [`SealedStore`]) so
//! VAULT competes in the same evaluation arena as Toleo: leaf counters
//! supply the versions, and a counter overflow *actually re-encrypts*
//! the covered group under a bumped group epoch — the cost (and the
//! replay-detection window) the paper's Table 4 row abstracts away.

// audit: allow-file(indexing, level-table indices are clamped with min/saturating_sub against its length)

/// Per-level geometry: how many counters one 64-byte node packs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelSpec {
    /// Children per node at this level.
    pub arity: usize,
    /// Counter width in bits.
    pub counter_bits: u32,
}

/// A VAULT tree's shape and cost model.
#[derive(Debug, Clone)]
pub struct VaultTree {
    levels: Vec<LevelSpec>,
    blocks: u64,
    /// Leaf counters (functional state; indexes follow block order).
    leaf_counters: Vec<u64>,
    /// Re-encryptions forced by counter overflows.
    pub overflow_resets: u64,
}

impl VaultTree {
    /// The paper's VAULT geometry: 64-ary leaves with 6-bit counters,
    /// 32-ary mid levels (12-bit), 16-ary upper levels (25-bit).
    pub fn paper_geometry() -> Vec<LevelSpec> {
        vec![
            LevelSpec {
                arity: 16,
                counter_bits: 25,
            },
            LevelSpec {
                arity: 32,
                counter_bits: 12,
            },
            LevelSpec {
                arity: 64,
                counter_bits: 6,
            },
        ]
    }

    /// Builds a tree protecting `blocks` cache blocks with the given
    /// geometry (last entry = leaf level; it repeats as needed).
    ///
    /// # Panics
    ///
    /// Panics if `geometry` is empty or `blocks == 0`.
    pub fn new(geometry: Vec<LevelSpec>, blocks: u64) -> Self {
        assert!(
            !geometry.is_empty(),
            "geometry must have at least one level"
        );
        assert!(blocks > 0, "must protect at least one block");
        VaultTree {
            levels: geometry,
            blocks,
            leaf_counters: vec![0; blocks as usize],
            overflow_resets: 0,
        }
    }

    /// Depth of the tree for the protected size (levels needed so the
    /// product of arities covers all blocks).
    pub fn depth(&self) -> usize {
        let mut covered = 1u64;
        let mut depth = 0;
        // Repeat the leaf level's arity for deep trees.
        loop {
            let spec = self.levels[self
                .levels
                .len()
                .saturating_sub(depth + 1)
                .min(self.levels.len() - 1)];
            covered = covered.saturating_mul(spec.arity as u64);
            depth += 1;
            if covered >= self.blocks {
                return depth;
            }
        }
    }

    /// Leaf data-to-version ratio: one 64-byte leaf node covers
    /// `arity * 64` bytes of data (the paper's Table 4 "VAULT (Leaf)"
    /// row: 64 B protects 4 KB = 64:1).
    pub fn leaf_ratio(&self) -> f64 {
        self.levels
            .last()
            .map_or(0.0, |leaf| (leaf.arity * 64) as f64 / 64.0)
    }

    /// Records a write to `block`, bumping its leaf counter. Returns the
    /// number of blocks that had to be re-encrypted (0 in the common case,
    /// `arity` when the small counter overflowed and the node re-based).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn update(&mut self, block: u64) -> u64 {
        assert!(block < self.blocks, "block out of range");
        let Some(&leaf) = self.levels.last() else {
            return 0;
        };
        let max = (1u64 << leaf.counter_bits) - 1;
        let ctr = &mut self.leaf_counters[block as usize];
        if *ctr >= max {
            // Overflow: re-base all siblings, re-encrypt the whole group.
            self.overflow_resets += 1;
            let group = (block as usize / leaf.arity) * leaf.arity;
            let end = (group + leaf.arity).min(self.leaf_counters.len());
            for c in &mut self.leaf_counters[group..end] {
                *c = 0;
            }
            self.leaf_counters[block as usize] = 1;
            return (end - group) as u64;
        }
        *ctr += 1;
        0
    }

    /// The current counter of a block.
    pub fn counter(&self, block: u64) -> u64 {
        self.leaf_counters[block as usize]
    }

    /// Children per leaf node — the group that re-bases together on a
    /// counter overflow.
    pub fn leaf_arity(&self) -> usize {
        self.levels.last().map_or(1, |leaf| leaf.arity)
    }

    /// Width of a leaf counter in bits.
    pub fn leaf_counter_bits(&self) -> u32 {
        self.levels.last().map_or(1, |leaf| leaf.counter_bits)
    }

    /// Number of protected blocks.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }
}

use crate::store::{BlockCapsule, SealedStore};
use toleo_core::protected::{Capsule, MemoryError, MemoryStats, ProtectedMemory};

/// A functional VAULT-style protection engine: data blocks sealed under
/// `(epoch || leaf counter, address)` with the small-counter overflow
/// semantics the scheme is known for — one hot block forces the whole
/// covered group through re-encryption every `2^counter_bits - 1` writes.
///
/// The wrapper keeps a per-group epoch that bumps on every overflow
/// reset, so `(epoch, counter)` pairs never repeat and stale capsules
/// from before a reset stay detectable. The tree's internal MAC chain is
/// modelled by [`CounterTree`](crate::tree::CounterTree) in the SGX
/// engine; here the version store itself is treated as authenticated and
/// the evaluation focuses on VAULT's distinguishing cost: overflow
/// resets.
///
/// # Examples
///
/// ```
/// use toleo_baselines::vault::VaultEngine;
///
/// let mut v = VaultEngine::new(1 << 20); // 1 MB protected
/// v.write(0x40, &[9u8; 64]).unwrap();
/// assert_eq!(v.read(0x40).unwrap(), [9u8; 64]);
/// ```
#[derive(Debug)]
pub struct VaultEngine {
    tree: VaultTree,
    /// Per-leaf-group epochs; `version = epoch << counter_bits | counter`.
    epochs: Vec<u64>,
    store: SealedStore,
    bytes: u64,
    reads: u64,
    writes: u64,
    version_fetches: u64,
}

impl VaultEngine {
    /// Creates an engine protecting `bytes` of memory with the paper's
    /// VAULT geometry.
    ///
    /// # Panics
    ///
    /// Panics if `bytes < 64`.
    pub fn new(bytes: u64) -> Self {
        let blocks = bytes / 64;
        let tree = VaultTree::new(VaultTree::paper_geometry(), blocks);
        let groups = (blocks as usize).div_ceil(tree.leaf_arity());
        VaultEngine {
            epochs: vec![0; groups],
            tree,
            store: SealedStore::new(b"vault-data-key16", *b"vault-mac-key16!"),
            bytes,
            reads: 0,
            writes: 0,
            version_fetches: 0,
        }
    }

    /// Overflow resets performed so far (each re-encrypted a whole leaf
    /// group).
    pub fn overflow_resets(&self) -> u64 {
        self.tree.overflow_resets
    }

    fn check(&self, addr: u64) -> Result<u64, MemoryError> {
        assert_eq!(addr % 64, 0, "unaligned block access");
        if addr >= self.bytes {
            return Err(MemoryError::OutOfRange { address: addr });
        }
        Ok(addr / 64)
    }

    fn version(&self, block: u64) -> u64 {
        let group = block as usize / self.tree.leaf_arity();
        (self.epochs[group] << self.tree.leaf_counter_bits()) | self.tree.counter(block)
    }

    /// Writes a block: bump the leaf counter, seal under the new version,
    /// and on a counter overflow re-encrypt the whole covered group under
    /// a fresh epoch.
    ///
    /// # Errors
    ///
    /// [`MemoryError::OutOfRange`] beyond the protected size;
    /// [`MemoryError::IntegrityViolation`] if a tampered/replayed sibling
    /// is caught by the overflow re-encryption walk.
    ///
    /// # Panics
    ///
    /// Panics on unaligned addresses.
    pub fn write(&mut self, addr: u64, plaintext: &[u8; 64]) -> Result<(), MemoryError> {
        let block = self.check(addr)?;
        let arity = self.tree.leaf_arity();
        let bits = self.tree.leaf_counter_bits();
        let group = block as usize / arity;
        // Snapshot the group's pre-update versions: an overflow re-bases
        // every sibling counter, and the reset walk must unseal each
        // resident sibling under the version it was sealed with.
        let group_start = (group * arity) as u64;
        let group_end = (group_start + arity as u64).min(self.tree.blocks());
        let old_versions: Vec<u64> = (group_start..group_end).map(|b| self.version(b)).collect();
        let reencrypted = self.tree.update(block);
        self.version_fetches += 1;
        self.writes += 1;
        if reencrypted > 0 {
            // Counter overflow: new epoch, re-encrypt every resident
            // covered block (except the one about to be overwritten).
            self.epochs[group] += 1;
            debug_assert!(self.epochs[group] << bits >> bits == self.epochs[group]);
            for b in group_start..group_end {
                if b == block {
                    continue;
                }
                let a = b * 64;
                self.store
                    .reseal(old_versions[(b - group_start) as usize], self.version(b), a)
                    .map_err(|()| MemoryError::IntegrityViolation { address: a })?;
            }
        }
        self.store.seal(self.version(block), addr, plaintext);
        Ok(())
    }

    /// Reads a block, verifying the MAC under the current
    /// `(epoch, counter)` version.
    ///
    /// # Errors
    ///
    /// [`MemoryError::IntegrityViolation`] on tamper/replay;
    /// [`MemoryError::OutOfRange`] beyond the protected size.
    ///
    /// # Panics
    ///
    /// Panics on unaligned addresses.
    pub fn read(&mut self, addr: u64) -> Result<[u8; 64], MemoryError> {
        let block = self.check(addr)?;
        self.version_fetches += 1;
        self.reads += 1;
        self.store
            .unseal(self.version(block), addr)
            .map_err(|()| MemoryError::IntegrityViolation { address: addr })
    }
}

impl ProtectedMemory for VaultEngine {
    fn scheme(&self) -> &'static str {
        "vault"
    }

    fn read(&mut self, addr: u64) -> Result<[u8; 64], MemoryError> {
        VaultEngine::read(self, addr)
    }

    fn write(&mut self, addr: u64, data: &[u8; 64]) -> Result<(), MemoryError> {
        VaultEngine::write(self, addr, data)
    }

    fn stats(&self) -> MemoryStats {
        MemoryStats {
            reads: self.reads,
            writes: self.writes,
            version_fetches: self.version_fetches,
            reencryption_events: self.tree.overflow_resets,
        }
    }

    fn corrupt(&mut self, addr: u64, offset: usize, xor: u8) -> bool {
        self.store.corrupt(addr, offset, xor)
    }

    fn capture(&mut self, addr: u64) -> Capsule {
        Capsule::new(addr, self.store.capture(addr))
    }

    fn replay(&mut self, capsule: &Capsule) -> bool {
        match capsule.state::<BlockCapsule>() {
            Some(c) => {
                self.store.replay(capsule.address(), c);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vault(blocks: u64) -> VaultTree {
        VaultTree::new(VaultTree::paper_geometry(), blocks)
    }

    #[test]
    fn leaf_ratio_is_64_to_1() {
        assert!((vault(1024).leaf_ratio() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn depth_shallower_than_8ary() {
        // 2^21 blocks (128 MB): VAULT with 64/32/16 arity needs fewer
        // levels than the 8-ary SGX tree's 6.
        let v = vault(1 << 21);
        assert!(v.depth() < 6, "vault depth {}", v.depth());
    }

    #[test]
    fn updates_count() {
        let mut v = vault(256);
        v.update(7);
        v.update(7);
        assert_eq!(v.counter(7), 2);
        assert_eq!(v.overflow_resets, 0);
    }

    #[test]
    fn overflow_rebases_group() {
        let mut v = vault(256);
        // 6-bit leaf counters overflow at 63.
        for _ in 0..63 {
            assert_eq!(v.update(0), 0);
        }
        let reencrypted = v.update(0);
        assert_eq!(reencrypted, 64, "whole 64-block group re-encrypted");
        assert_eq!(v.overflow_resets, 1);
        assert_eq!(v.counter(0), 1);
        assert_eq!(v.counter(1), 0);
    }

    #[test]
    fn hot_blocks_cause_frequent_overflow() {
        // The VAULT weakness Toleo's uneven format avoids: one hot block
        // forces group-wide re-encryption every 63 writes.
        let mut v = vault(256);
        let mut reenc = 0;
        for _ in 0..1000 {
            reenc += v.update(0);
        }
        assert!(
            reenc >= 15 * 64,
            "re-encrypted {reenc} blocks for 1000 writes"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        vault(16).update(16);
    }

    fn engine() -> VaultEngine {
        VaultEngine::new(1 << 16)
    }

    #[test]
    fn engine_roundtrip_and_versioning() {
        let mut e = engine();
        e.write(0, &[1u8; 64]).unwrap();
        e.write(0, &[2u8; 64]).unwrap();
        assert_eq!(e.read(0).unwrap(), [2u8; 64]);
        assert_eq!(e.read(0x8000).unwrap(), [0u8; 64], "unwritten reads zero");
        assert!(matches!(
            e.write(1 << 16, &[0u8; 64]),
            Err(MemoryError::OutOfRange { .. })
        ));
    }

    #[test]
    fn engine_survives_overflow_resets_and_preserves_siblings() {
        let mut e = engine();
        // Residents across the hot block's 64-block group.
        for b in [1u64, 7, 33, 63] {
            e.write(b * 64, &[b as u8; 64]).unwrap();
        }
        // 200 writes to block 0: 6-bit counters overflow at 63, so the
        // group resets multiple times and re-encrypts the residents.
        for i in 0..200u64 {
            e.write(0, &[i as u8; 64]).unwrap();
        }
        assert!(e.overflow_resets() >= 3, "resets: {}", e.overflow_resets());
        assert_eq!(e.read(0).unwrap(), [199u8; 64]);
        for b in [1u64, 7, 33, 63] {
            assert_eq!(e.read(b * 64).unwrap(), [b as u8; 64], "sibling {b}");
        }
    }

    #[test]
    fn overflow_reset_detects_active_replay() {
        // The satellite scenario: the adversary replays a sibling's stale
        // capsule while the hot block drives the group into a counter
        // overflow. The reset walk unseals every resident sibling — the
        // stale capsule fails its MAC *during the reset*, before the
        // group could be re-based over the forgery.
        let mut e = engine();
        e.write(64, &[0xAAu8; 64]).unwrap(); // sibling, block 1
        e.write(64, &[0xABu8; 64]).unwrap();
        let stale = ProtectedMemory::capture(&mut e, 64);
        e.write(64, &[0xACu8; 64]).unwrap(); // version moves past capture
        assert!(ProtectedMemory::replay(&mut e, &stale));
        // Hammer block 0 to force the group overflow; the walk must trip.
        let mut caught = None;
        for i in 0..100u64 {
            if let Err(err) = e.write(0, &[i as u8; 64]) {
                caught = Some(err);
                break;
            }
        }
        assert!(
            matches!(
                caught,
                Some(MemoryError::IntegrityViolation { address: 64 })
            ),
            "reset walk must catch the replayed sibling, got {caught:?}"
        );
        assert!(e.overflow_resets() >= 1);
    }

    #[test]
    fn engine_replay_detected_on_read_before_any_reset() {
        let mut e = engine();
        e.write(0x40, &[1u8; 64]).unwrap();
        let stale = ProtectedMemory::capture(&mut e, 0x40);
        e.write(0x40, &[2u8; 64]).unwrap();
        assert!(ProtectedMemory::replay(&mut e, &stale));
        assert!(matches!(
            e.read(0x40),
            Err(MemoryError::IntegrityViolation { address: 0x40 })
        ));
    }

    #[test]
    fn epoch_keeps_versions_unique_across_resets() {
        // (epoch, counter) must never repeat for a block: collect the
        // write-time versions of the hot block across several overflows.
        let mut e = engine();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300u64 {
            e.write(0, &[0u8; 64]).unwrap();
            assert!(seen.insert(e.version(0)), "version repeated");
        }
        assert!(e.overflow_resets() >= 4);
    }
}
