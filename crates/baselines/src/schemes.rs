//! The compared protection schemes: their security-guarantee matrix
//! (Table 1) and version-storage footprints (Table 4).

use serde::{Deserialize, Serialize};

/// Degree to which a guarantee holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Level {
    /// Fully guaranteed.
    Yes,
    /// Partially guaranteed (e.g. AES-XTS confidentiality leaks
    /// same-value-write patterns).
    Partial,
    /// Not guaranteed.
    No,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Yes => "Yes",
            Level::Partial => "Partial",
            Level::No => "No",
        })
    }
}

/// The Table 1 guarantee matrix for one scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Guarantees {
    /// Protects the full physical memory space (vs a small EPC carve-out).
    pub full_space: Level,
    /// Data confidentiality.
    pub confidentiality: Level,
    /// Data integrity.
    pub integrity: Level,
    /// Freshness (replay protection).
    pub freshness: Level,
}

/// A protection scheme under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Original ("client") SGX: 128 MB EPC, AES-CTR + MAC + Merkle tree.
    ClientSgx,
    /// Scalable SGX: AES-XTS only, full memory, no integrity/freshness.
    ScalableSgx,
    /// Toleo: AES-XTS + MAC + smart-memory stealth versions.
    Toleo,
    /// VAULT: variable-arity counter tree.
    Vault,
    /// Morphable Counters: dynamically re-encoded counter leaves.
    MorphCtr,
    /// InvisiMem-far: all data in smart memory.
    InvisiMem,
}

impl Scheme {
    /// Table 1's three compared schemes.
    pub fn table1() -> [Scheme; 3] {
        [Scheme::ClientSgx, Scheme::ScalableSgx, Scheme::Toleo]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::ClientSgx => "Client SGX",
            Scheme::ScalableSgx => "Scalable SGX",
            Scheme::Toleo => "Toleo",
            Scheme::Vault => "VAULT",
            Scheme::MorphCtr => "MorphCtr-128",
            Scheme::InvisiMem => "InvisiMem",
        }
    }

    /// The guarantee matrix row (Table 1).
    pub fn guarantees(self) -> Guarantees {
        match self {
            Scheme::ClientSgx => Guarantees {
                full_space: Level::No, // 128 MB EPC only
                confidentiality: Level::Yes,
                integrity: Level::Yes,
                freshness: Level::Yes,
            },
            Scheme::ScalableSgx => Guarantees {
                full_space: Level::Yes,
                confidentiality: Level::Partial, // deterministic AES-XTS
                integrity: Level::No,
                freshness: Level::No,
            },
            Scheme::Toleo | Scheme::Vault | Scheme::MorphCtr | Scheme::InvisiMem => Guarantees {
                full_space: match self {
                    Scheme::Toleo | Scheme::InvisiMem => Level::Yes,
                    _ => Level::No, // tree-based schemes cap out at ~64 GB
                },
                confidentiality: Level::Yes,
                integrity: Level::Yes,
                freshness: Level::Yes,
            },
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A freshness-protected version representation (a Table 4 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionScheme {
    /// Row label.
    pub name: &'static str,
    /// Bytes of trusted version state per entry.
    pub version_bytes: f64,
    /// Bytes of data one entry protects.
    pub data_bytes: u64,
}

impl VersionScheme {
    /// Data-to-version size ratio (Table 4's last column).
    pub fn ratio(&self) -> f64 {
        self.data_bytes as f64 / self.version_bytes
    }

    /// The static rows of Table 4 (Toleo's measured average row is
    /// computed by the harness from device statistics).
    pub fn table4_static() -> Vec<VersionScheme> {
        vec![
            VersionScheme {
                name: "Client SGX (Leaf)",
                version_bytes: 7.0,
                data_bytes: 64,
            },
            VersionScheme {
                name: "VAULT (Leaf)",
                version_bytes: 64.0,
                data_bytes: 4096,
            },
            VersionScheme {
                name: "MorphCtr-128 (Leaf)",
                version_bytes: 64.0,
                data_bytes: 8192,
            },
            VersionScheme {
                name: "Toleo Stealth Flat",
                version_bytes: 12.0,
                data_bytes: 4096,
            },
            // Uneven/full rows include the flat entry they still use.
            VersionScheme {
                name: "Toleo Stealth Uneven",
                version_bytes: 68.0,
                data_bytes: 4096,
            },
            VersionScheme {
                name: "Toleo Stealth Full",
                version_bytes: 228.0,
                data_bytes: 4096,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let client = Scheme::ClientSgx.guarantees();
        assert_eq!(client.full_space, Level::No);
        assert_eq!(client.freshness, Level::Yes);
        let scalable = Scheme::ScalableSgx.guarantees();
        assert_eq!(scalable.full_space, Level::Yes);
        assert_eq!(scalable.confidentiality, Level::Partial);
        assert_eq!(scalable.integrity, Level::No);
        assert_eq!(scalable.freshness, Level::No);
        let toleo = Scheme::Toleo.guarantees();
        assert_eq!(toleo.full_space, Level::Yes);
        assert_eq!(toleo.confidentiality, Level::Yes);
        assert_eq!(toleo.integrity, Level::Yes);
        assert_eq!(toleo.freshness, Level::Yes);
    }

    #[test]
    fn table4_ratios_match_paper() {
        let rows = VersionScheme::table4_static();
        let by_name = |n: &str| rows.iter().find(|r| r.name.contains(n)).unwrap().ratio();
        assert!((by_name("Client SGX") - 9.14).abs() < 0.01);
        assert!((by_name("VAULT") - 64.0).abs() < 0.01);
        assert!((by_name("MorphCtr") - 128.0).abs() < 0.01);
        assert!((by_name("Flat") - 341.3).abs() < 0.5);
        assert!((by_name("Uneven") - 60.2).abs() < 0.5);
        assert!((by_name("Full") - 17.96).abs() < 0.1);
    }

    #[test]
    fn display_names() {
        assert_eq!(Scheme::Toleo.to_string(), "Toleo");
        assert_eq!(Level::Partial.to_string(), "Partial");
    }
}
