//! Morphable Counters (Saileshwar et al., MICRO'18): a 64-byte counter
//! leaf that *morphs* between encodings based on the observed write
//! skew, covering 128 blocks (8 KB) per leaf — the densest Merkle-leaf
//! design Toleo is compared against in Table 4.
//!
//! Two encodings are modelled:
//!
//! * **Uniform** — 128 small same-width counters (ZCC-style), best when
//!   writes are spread evenly.
//! * **Skewed** — a bit-vector plus a few large counters for the hot
//!   blocks, best when a handful of blocks take most writes.
//!
//! Either way, exceeding the encoding's capacity forces a leaf re-base
//! with re-encryption of all 128 covered blocks.
//!
//! [`MorphEngine`] wraps the leaves in a functional protection engine
//! (AES-CTR + MAC over a [`SealedStore`]) so
//! Morphable Counters competes in the same evaluation arena as Toleo:
//! leaf versions seal the data blocks, and a leaf re-base *actually
//! re-encrypts* the covered 8 KB — exactly the cost the denser 128:1
//! encoding trades for.

// audit: allow-file(indexing, slot indices are reduced modulo BLOCKS_PER_LEAF)

/// Current encoding of a morphable leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// 128 uniform 3-bit deltas over a shared base.
    Uniform,
    /// Bit-vector + 4 large per-block counters for the hottest blocks.
    Skewed,
}

/// Blocks covered by one morphable leaf (8 KB of data).
pub const BLOCKS_PER_LEAF: usize = 128;
/// Capacity of a uniform 3-bit delta.
const UNIFORM_MAX: u64 = 7;
/// Capacity of a skewed large counter (20-bit).
const SKEWED_MAX: u64 = (1 << 20) - 1;
/// Hot slots available in skewed encoding.
const HOT_SLOTS: usize = 4;

/// One morphable counter leaf with its covered blocks' write state.
#[derive(Debug, Clone)]
pub struct MorphLeaf {
    encoding: Encoding,
    base: u64,
    deltas: [u64; BLOCKS_PER_LEAF],
    /// Re-encryptions of the covered 8 KB forced by overflow/re-base.
    pub rebases: u64,
    /// Encoding switches performed.
    pub morphs: u64,
}

impl Default for MorphLeaf {
    fn default() -> Self {
        Self::new()
    }
}

impl MorphLeaf {
    /// A fresh, uniform-encoded leaf.
    pub fn new() -> Self {
        MorphLeaf {
            encoding: Encoding::Uniform,
            base: 0,
            deltas: [0; BLOCKS_PER_LEAF],
            rebases: 0,
            morphs: 0,
        }
    }

    /// Current encoding.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Version of a covered block.
    pub fn version(&self, slot: usize) -> u64 {
        self.base + self.deltas[slot]
    }

    /// How many of the covered blocks exceed the uniform delta capacity.
    fn over_uniform(&self) -> usize {
        self.deltas.iter().filter(|&&d| d > UNIFORM_MAX).count()
    }

    /// Records a write to `slot`. Returns the number of covered blocks
    /// re-encrypted (0 in the common case; 128 on a re-base).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 128`.
    pub fn update(&mut self, slot: usize) -> u64 {
        assert!(slot < BLOCKS_PER_LEAF, "slot out of leaf");
        self.deltas[slot] += 1;
        match self.encoding {
            Encoding::Uniform => {
                if self.deltas[slot] > UNIFORM_MAX {
                    // Try morphing to the skewed encoding first.
                    if self.over_uniform() <= HOT_SLOTS {
                        self.encoding = Encoding::Skewed;
                        self.morphs += 1;
                        0
                    } else {
                        self.rebase()
                    }
                } else {
                    0
                }
            }
            Encoding::Skewed => {
                let over = self.over_uniform();
                if over > HOT_SLOTS || self.deltas[slot] > SKEWED_MAX {
                    self.rebase()
                } else {
                    0
                }
            }
        }
    }

    fn rebase(&mut self) -> u64 {
        // Fold the minimum delta into the base and clear; if skew persists
        // the encoding stays skewed, otherwise return to uniform.
        let min = self.deltas.iter().copied().min().unwrap_or(0);
        self.base += min;
        for d in self.deltas.iter_mut() {
            *d -= min;
        }
        // Any remaining over-capacity deltas force a full reset.
        if self.over_uniform() > HOT_SLOTS {
            let max = self.deltas.iter().copied().max().unwrap_or(0);
            self.base += max;
            self.deltas = [0; BLOCKS_PER_LEAF];
        }
        self.encoding = if self.over_uniform() == 0 {
            Encoding::Uniform
        } else {
            Encoding::Skewed
        };
        self.rebases += 1;
        BLOCKS_PER_LEAF as u64
    }

    /// Leaf data-to-version ratio (Table 4: 64 B covers 8 KB = 128:1).
    pub fn ratio() -> f64 {
        (BLOCKS_PER_LEAF * 64) as f64 / 64.0
    }
}

use crate::store::{BlockCapsule, SealedStore};
use toleo_core::protected::{Capsule, MemoryError, MemoryStats, ProtectedMemory};

/// A functional Morphable-Counters protection engine: data blocks sealed
/// under their morphable-leaf version, with leaf re-bases re-encrypting
/// the whole covered 8 KB.
///
/// A re-base may advance the versions of *unwritten* sibling blocks (the
/// fold adds the evicted maximum into the shared base), so the engine
/// re-seals every resident covered block whenever
/// [`MorphLeaf::update`] reports a re-base — and in doing so catches any
/// tampered or replayed sibling *during the walk*. As with
/// [`VaultEngine`](crate::vault::VaultEngine), the counter store itself
/// is modelled as authenticated (the MAC-chain mechanics live in
/// [`CounterTree`](crate::tree::CounterTree)); the arena comparison
/// focuses on the scheme's distinguishing cost: encoding morphs and
/// re-base storms.
///
/// # Examples
///
/// ```
/// use toleo_baselines::morph::MorphEngine;
///
/// let mut m = MorphEngine::new(1 << 20); // 1 MB protected
/// m.write(0x40, &[9u8; 64]).unwrap();
/// assert_eq!(m.read(0x40).unwrap(), [9u8; 64]);
/// ```
#[derive(Debug)]
pub struct MorphEngine {
    leaves: Vec<MorphLeaf>,
    store: SealedStore,
    bytes: u64,
    reads: u64,
    writes: u64,
    version_fetches: u64,
}

impl MorphEngine {
    /// Creates an engine protecting `bytes` of memory (one morphable leaf
    /// per 8 KB).
    ///
    /// # Panics
    ///
    /// Panics if `bytes < 64`.
    pub fn new(bytes: u64) -> Self {
        assert!(bytes >= 64, "must protect at least one block");
        let blocks = (bytes / 64) as usize;
        MorphEngine {
            leaves: vec![MorphLeaf::new(); blocks.div_ceil(BLOCKS_PER_LEAF)],
            store: SealedStore::new(b"morph-data-key16", *b"morph-mac-key16!"),
            bytes,
            reads: 0,
            writes: 0,
            version_fetches: 0,
        }
    }

    /// Total leaf re-bases (each re-encrypted 8 KB).
    pub fn rebases(&self) -> u64 {
        self.leaves.iter().map(|l| l.rebases).sum()
    }

    /// Total encoding switches (uniform ↔ skewed), which cost nothing.
    pub fn morphs(&self) -> u64 {
        self.leaves.iter().map(|l| l.morphs).sum()
    }

    fn check(&self, addr: u64) -> Result<u64, MemoryError> {
        assert_eq!(addr % 64, 0, "unaligned block access");
        if addr >= self.bytes {
            return Err(MemoryError::OutOfRange { address: addr });
        }
        Ok(addr / 64)
    }

    /// Writes a block: bump its leaf delta, seal under the new version,
    /// and on a leaf re-base re-encrypt every resident covered block.
    ///
    /// # Errors
    ///
    /// [`MemoryError::OutOfRange`] beyond the protected size;
    /// [`MemoryError::IntegrityViolation`] if the re-base walk catches a
    /// tampered/replayed covered block.
    ///
    /// # Panics
    ///
    /// Panics on unaligned addresses.
    pub fn write(&mut self, addr: u64, plaintext: &[u8; 64]) -> Result<(), MemoryError> {
        let block = self.check(addr)?;
        let leaf_idx = block as usize / BLOCKS_PER_LEAF;
        let slot = block as usize % BLOCKS_PER_LEAF;
        // Snapshot pre-update versions: a re-base can move EVERY covered
        // block's version, and the walk must unseal each resident block
        // under the version it was sealed with.
        let old_versions: [u64; BLOCKS_PER_LEAF] =
            std::array::from_fn(|s| self.leaves[leaf_idx].version(s));
        let reencrypted = self.leaves[leaf_idx].update(slot);
        self.version_fetches += 1;
        self.writes += 1;
        if reencrypted > 0 {
            let leaf_base = (leaf_idx * BLOCKS_PER_LEAF) as u64;
            for (s, old_version) in old_versions.iter().enumerate() {
                if s == slot {
                    continue;
                }
                let b = leaf_base + s as u64;
                if b * 64 >= self.bytes {
                    break;
                }
                let a = b * 64;
                self.store
                    .reseal(*old_version, self.leaves[leaf_idx].version(s), a)
                    .map_err(|()| MemoryError::IntegrityViolation { address: a })?;
            }
        }
        self.store
            .seal(self.leaves[leaf_idx].version(slot), addr, plaintext);
        Ok(())
    }

    /// Reads a block, verifying the MAC under its current leaf version.
    ///
    /// # Errors
    ///
    /// [`MemoryError::IntegrityViolation`] on tamper/replay;
    /// [`MemoryError::OutOfRange`] beyond the protected size.
    ///
    /// # Panics
    ///
    /// Panics on unaligned addresses.
    pub fn read(&mut self, addr: u64) -> Result<[u8; 64], MemoryError> {
        let block = self.check(addr)?;
        let leaf_idx = block as usize / BLOCKS_PER_LEAF;
        let slot = block as usize % BLOCKS_PER_LEAF;
        self.version_fetches += 1;
        self.reads += 1;
        self.store
            .unseal(self.leaves[leaf_idx].version(slot), addr)
            .map_err(|()| MemoryError::IntegrityViolation { address: addr })
    }
}

impl ProtectedMemory for MorphEngine {
    fn scheme(&self) -> &'static str {
        "morph"
    }

    fn read(&mut self, addr: u64) -> Result<[u8; 64], MemoryError> {
        MorphEngine::read(self, addr)
    }

    fn write(&mut self, addr: u64, data: &[u8; 64]) -> Result<(), MemoryError> {
        MorphEngine::write(self, addr, data)
    }

    fn stats(&self) -> MemoryStats {
        MemoryStats {
            reads: self.reads,
            writes: self.writes,
            version_fetches: self.version_fetches,
            reencryption_events: self.rebases(),
        }
    }

    fn corrupt(&mut self, addr: u64, offset: usize, xor: u8) -> bool {
        self.store.corrupt(addr, offset, xor)
    }

    fn capture(&mut self, addr: u64) -> Capsule {
        Capsule::new(addr, self.store.capture(addr))
    }

    fn replay(&mut self, capsule: &Capsule) -> bool {
        match capsule.state::<BlockCapsule>() {
            Some(c) => {
                self.store.replay(capsule.address(), c);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_128_to_1() {
        assert!((MorphLeaf::ratio() - 128.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_writes_stay_uniform() {
        let mut leaf = MorphLeaf::new();
        for round in 0..7 {
            for slot in 0..BLOCKS_PER_LEAF {
                assert_eq!(leaf.update(slot), 0, "round {round}");
            }
        }
        assert_eq!(leaf.encoding(), Encoding::Uniform);
        assert_eq!(leaf.rebases, 0);
        assert_eq!(leaf.version(5), 7);
    }

    #[test]
    fn skewed_writes_morph_without_rebase() {
        let mut leaf = MorphLeaf::new();
        // One hot block blows the 3-bit delta: the leaf morphs to skewed
        // instead of re-encrypting.
        for _ in 0..8 {
            leaf.update(3);
        }
        assert_eq!(leaf.encoding(), Encoding::Skewed);
        assert_eq!(leaf.morphs, 1);
        assert_eq!(leaf.rebases, 0);
        assert_eq!(leaf.version(3), 8);
    }

    #[test]
    fn too_many_hot_blocks_force_rebase() {
        let mut leaf = MorphLeaf::new();
        let mut reenc = 0;
        for hot in 0..6 {
            for _ in 0..9 {
                reenc += leaf.update(hot);
            }
        }
        assert!(reenc >= BLOCKS_PER_LEAF as u64, "re-based at least once");
        assert!(leaf.rebases >= 1);
    }

    #[test]
    fn versions_survive_morph_and_rebase() {
        let mut leaf = MorphLeaf::new();
        let mut shadow = [0u64; BLOCKS_PER_LEAF];
        // Deterministic skewed pattern.
        for i in 0..2000usize {
            let slot = if i % 3 == 0 {
                i % 5
            } else {
                i % BLOCKS_PER_LEAF
            };
            leaf.update(slot);
            shadow[slot] += 1;
        }
        // Versions must be non-decreasing and consistent with the shadow
        // for the monotone property (rebases may advance the base past
        // intermediate values but never lose increments).
        for (slot, s) in shadow.iter().enumerate() {
            assert!(
                leaf.version(slot) >= *s,
                "slot {slot}: {} < {s}",
                leaf.version(slot)
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of leaf")]
    fn bad_slot_panics() {
        MorphLeaf::new().update(128);
    }

    fn engine() -> MorphEngine {
        MorphEngine::new(1 << 16)
    }

    #[test]
    fn engine_roundtrip_and_range() {
        let mut e = engine();
        e.write(0x40, &[1u8; 64]).unwrap();
        e.write(0x40, &[2u8; 64]).unwrap();
        assert_eq!(e.read(0x40).unwrap(), [2u8; 64]);
        assert_eq!(e.read(0x2000).unwrap(), [0u8; 64]);
        assert!(matches!(
            e.read(1 << 16),
            Err(MemoryError::OutOfRange { .. })
        ));
    }

    #[test]
    fn engine_survives_rebases_and_preserves_covered_blocks() {
        let mut e = engine();
        // Residents spread over one leaf's 128 blocks.
        for b in [1u64, 20, 64, 127] {
            e.write(b * 64, &[b as u8; 64]).unwrap();
        }
        // Six hot blocks overflowing the skewed encoding force re-bases
        // (same shape as the leaf-level too_many_hot_blocks test).
        for hot in 2..8u64 {
            for i in 0..12u64 {
                e.write(hot * 64, &[i as u8; 64]).unwrap();
            }
        }
        assert!(e.rebases() >= 1, "rebases: {}", e.rebases());
        for b in [1u64, 20, 64, 127] {
            assert_eq!(e.read(b * 64).unwrap(), [b as u8; 64], "block {b}");
        }
    }

    #[test]
    fn engine_tamper_and_replay_detected() {
        let mut e = engine();
        e.write(0x40, &[7u8; 64]).unwrap();
        assert!(ProtectedMemory::corrupt(&mut e, 0x40, 63, 0x01));
        assert!(matches!(
            e.read(0x40),
            Err(MemoryError::IntegrityViolation { address: 0x40 })
        ));

        let mut e = engine();
        e.write(0x80, &[1u8; 64]).unwrap();
        let stale = ProtectedMemory::capture(&mut e, 0x80);
        e.write(0x80, &[2u8; 64]).unwrap();
        assert!(ProtectedMemory::replay(&mut e, &stale));
        assert!(e.read(0x80).is_err());
    }

    #[test]
    fn rebase_walk_detects_replayed_sibling() {
        let mut e = engine();
        // A resident sibling in leaf 0 gets replayed to a stale version.
        e.write(64, &[0xA0u8; 64]).unwrap();
        e.write(64, &[0xA1u8; 64]).unwrap();
        let stale = ProtectedMemory::capture(&mut e, 64);
        e.write(64, &[0xA2u8; 64]).unwrap();
        assert!(ProtectedMemory::replay(&mut e, &stale));
        // Drive the leaf into a re-base with >4 hot blocks.
        let mut caught = None;
        'drive: for hot in 2..8u64 {
            for i in 0..12u64 {
                if let Err(err) = e.write(hot * 64, &[i as u8; 64]) {
                    caught = Some(err);
                    break 'drive;
                }
            }
        }
        assert!(
            matches!(
                caught,
                Some(MemoryError::IntegrityViolation { address: 64 })
            ),
            "re-base walk must catch the stale sibling, got {caught:?}"
        );
    }
}
