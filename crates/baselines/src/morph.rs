//! Morphable Counters (Saileshwar et al., MICRO'18): a 64-byte counter
//! leaf that *morphs* between encodings based on the observed write
//! skew, covering 128 blocks (8 KB) per leaf — the densest Merkle-leaf
//! design Toleo is compared against in Table 4.
//!
//! Two encodings are modelled:
//!
//! * **Uniform** — 128 small same-width counters (ZCC-style), best when
//!   writes are spread evenly.
//! * **Skewed** — a bit-vector plus a few large counters for the hot
//!   blocks, best when a handful of blocks take most writes.
//!
//! Either way, exceeding the encoding's capacity forces a leaf re-base
//! with re-encryption of all 128 covered blocks.

/// Current encoding of a morphable leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// 128 uniform 3-bit deltas over a shared base.
    Uniform,
    /// Bit-vector + 4 large per-block counters for the hottest blocks.
    Skewed,
}

/// Blocks covered by one morphable leaf (8 KB of data).
pub const BLOCKS_PER_LEAF: usize = 128;
/// Capacity of a uniform 3-bit delta.
const UNIFORM_MAX: u64 = 7;
/// Capacity of a skewed large counter (20-bit).
const SKEWED_MAX: u64 = (1 << 20) - 1;
/// Hot slots available in skewed encoding.
const HOT_SLOTS: usize = 4;

/// One morphable counter leaf with its covered blocks' write state.
#[derive(Debug, Clone)]
pub struct MorphLeaf {
    encoding: Encoding,
    base: u64,
    deltas: [u64; BLOCKS_PER_LEAF],
    /// Re-encryptions of the covered 8 KB forced by overflow/re-base.
    pub rebases: u64,
    /// Encoding switches performed.
    pub morphs: u64,
}

impl Default for MorphLeaf {
    fn default() -> Self {
        Self::new()
    }
}

impl MorphLeaf {
    /// A fresh, uniform-encoded leaf.
    pub fn new() -> Self {
        MorphLeaf {
            encoding: Encoding::Uniform,
            base: 0,
            deltas: [0; BLOCKS_PER_LEAF],
            rebases: 0,
            morphs: 0,
        }
    }

    /// Current encoding.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Version of a covered block.
    pub fn version(&self, slot: usize) -> u64 {
        self.base + self.deltas[slot]
    }

    /// How many of the covered blocks exceed the uniform delta capacity.
    fn over_uniform(&self) -> usize {
        self.deltas.iter().filter(|&&d| d > UNIFORM_MAX).count()
    }

    /// Records a write to `slot`. Returns the number of covered blocks
    /// re-encrypted (0 in the common case; 128 on a re-base).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 128`.
    pub fn update(&mut self, slot: usize) -> u64 {
        assert!(slot < BLOCKS_PER_LEAF, "slot out of leaf");
        self.deltas[slot] += 1;
        match self.encoding {
            Encoding::Uniform => {
                if self.deltas[slot] > UNIFORM_MAX {
                    // Try morphing to the skewed encoding first.
                    if self.over_uniform() <= HOT_SLOTS {
                        self.encoding = Encoding::Skewed;
                        self.morphs += 1;
                        0
                    } else {
                        self.rebase()
                    }
                } else {
                    0
                }
            }
            Encoding::Skewed => {
                let over = self.over_uniform();
                if over > HOT_SLOTS || self.deltas[slot] > SKEWED_MAX {
                    self.rebase()
                } else {
                    0
                }
            }
        }
    }

    fn rebase(&mut self) -> u64 {
        // Fold the minimum delta into the base and clear; if skew persists
        // the encoding stays skewed, otherwise return to uniform.
        let min = *self.deltas.iter().min().expect("non-empty");
        self.base += min;
        for d in self.deltas.iter_mut() {
            *d -= min;
        }
        // Any remaining over-capacity deltas force a full reset.
        if self.over_uniform() > HOT_SLOTS {
            let max = *self.deltas.iter().max().expect("non-empty");
            self.base += max;
            self.deltas = [0; BLOCKS_PER_LEAF];
        }
        self.encoding = if self.over_uniform() == 0 {
            Encoding::Uniform
        } else {
            Encoding::Skewed
        };
        self.rebases += 1;
        BLOCKS_PER_LEAF as u64
    }

    /// Leaf data-to-version ratio (Table 4: 64 B covers 8 KB = 128:1).
    pub fn ratio() -> f64 {
        (BLOCKS_PER_LEAF * 64) as f64 / 64.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_128_to_1() {
        assert!((MorphLeaf::ratio() - 128.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_writes_stay_uniform() {
        let mut leaf = MorphLeaf::new();
        for round in 0..7 {
            for slot in 0..BLOCKS_PER_LEAF {
                assert_eq!(leaf.update(slot), 0, "round {round}");
            }
        }
        assert_eq!(leaf.encoding(), Encoding::Uniform);
        assert_eq!(leaf.rebases, 0);
        assert_eq!(leaf.version(5), 7);
    }

    #[test]
    fn skewed_writes_morph_without_rebase() {
        let mut leaf = MorphLeaf::new();
        // One hot block blows the 3-bit delta: the leaf morphs to skewed
        // instead of re-encrypting.
        for _ in 0..8 {
            leaf.update(3);
        }
        assert_eq!(leaf.encoding(), Encoding::Skewed);
        assert_eq!(leaf.morphs, 1);
        assert_eq!(leaf.rebases, 0);
        assert_eq!(leaf.version(3), 8);
    }

    #[test]
    fn too_many_hot_blocks_force_rebase() {
        let mut leaf = MorphLeaf::new();
        let mut reenc = 0;
        for hot in 0..6 {
            for _ in 0..9 {
                reenc += leaf.update(hot);
            }
        }
        assert!(reenc >= BLOCKS_PER_LEAF as u64, "re-based at least once");
        assert!(leaf.rebases >= 1);
    }

    #[test]
    fn versions_survive_morph_and_rebase() {
        let mut leaf = MorphLeaf::new();
        let mut shadow = [0u64; BLOCKS_PER_LEAF];
        // Deterministic skewed pattern.
        for i in 0..2000usize {
            let slot = if i % 3 == 0 {
                i % 5
            } else {
                i % BLOCKS_PER_LEAF
            };
            leaf.update(slot);
            shadow[slot] += 1;
        }
        // Versions must be non-decreasing and consistent with the shadow
        // for the monotone property (rebases may advance the base past
        // intermediate values but never lose increments).
        for (slot, s) in shadow.iter().enumerate() {
            assert!(
                leaf.version(slot) >= *s,
                "slot {slot}: {} < {s}",
                leaf.version(slot)
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of leaf")]
    fn bad_slot_panics() {
        MorphLeaf::new().update(128);
    }
}
