//! Offline shim for `serde_derive`.
//!
//! The build environment has no registry access, so the real
//! `serde_derive` cannot be fetched. The workspace only ever uses
//! `#[derive(Serialize, Deserialize)]` as inert markers — nothing is
//! actually serialized — so no-op derives are sufficient. Swap this
//! crate for the real `serde_derive` in `[workspace.dependencies]`
//! when registry access is available.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
