//! Offline shim for `criterion`.
//!
//! The build environment has no registry access, so the real
//! `criterion` cannot be fetched. This shim implements the subset the
//! workspace's benches use — [`criterion_group!`], [`criterion_main!`],
//! [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`Bencher::iter`], [`Bencher::iter_batched`],
//! [`Throughput`], [`BenchmarkId`], [`BatchSize`] — with a simple
//! calibrated wall-clock measurement loop (median-free: mean of a
//! fixed measurement window). No statistical analysis, plots, or
//! baselines. Swap for the real `criterion` in
//! `[workspace.dependencies]` when registry access is available.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard black box (the real criterion forwards to
/// it on recent toolchains too).
pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASURE_TIME: Duration = Duration::from_millis(200);
/// Warm-up time per benchmark.
const WARMUP_TIME: Duration = Duration::from_millis(50);

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How much setup output to batch per measurement (shim: ignored,
/// every iteration gets a fresh setup value).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small routine output.
    SmallInput,
    /// Large routine output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly over the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up; also counts iterations to calibrate the batch size.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < WARMUP_TIME {
            black_box(routine());
            warm_iters += 1;
        }
        // Batch iterations between clock reads so `Instant::now` overhead
        // (tens of ns) does not swamp nanosecond-scale routines. Aim for
        // ~512 clock reads over the measurement window.
        let per_window = warm_iters * (MEASURE_TIME.as_nanos() / WARMUP_TIME.as_nanos()) as u64;
        let batch = (per_window / 512).max(1);
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
            if start.elapsed() >= MEASURE_TIME {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    /// Measures `routine` on fresh values from `setup`, excluding the
    /// setup cost from the reported time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up.
        let start = Instant::now();
        while start.elapsed() < WARMUP_TIME {
            let input = setup();
            black_box(routine(input));
        }
        // Measure, timing only the routine.
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let window = Instant::now();
        while window.elapsed() < MEASURE_TIME {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
        }
        self.total = measured;
        self.iters = iters;
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.total.as_nanos() as f64 / self.iters as f64
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Ends the group (report-flush point in the real criterion).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let ns = b.ns_per_iter();
        let mut line = format!("{}/{:<32} {:>12.1} ns/iter", self.name, id, ns);
        if let Some(tp) = self.throughput {
            let (amount, unit) = match tp {
                Throughput::Bytes(n) => (n as f64, "MiB/s"),
                Throughput::Elements(n) => (n as f64, "Melem/s"),
            };
            if ns > 0.0 {
                let per_sec = amount * 1e9 / ns;
                let scaled = match tp {
                    Throughput::Bytes(_) => per_sec / (1024.0 * 1024.0),
                    Throughput::Elements(_) => per_sec / 1e6,
                };
                line.push_str(&format!("  {scaled:>10.1} {unit}"));
            }
        }
        println!("{line}");
    }
}

/// Entry point handed to each bench function (mirrors
/// `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group runner invoking each bench function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
///
/// `cargo test --benches` invokes harness-less bench binaries with
/// `--test`; in that mode the benchmarks are skipped so test runs stay
/// fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box(2u64).wrapping_mul(3));
        assert!(b.iters > 0);
        assert!(b.ns_per_iter() > 0.0);
    }

    #[test]
    fn iter_batched_counts_routine_only() {
        let mut b = Bencher::default();
        b.iter_batched(
            || vec![1u8; 64],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.iters > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("merkle", 4096);
        assert_eq!(id.id, "merkle/4096");
    }
}
