//! Offline shim for `serde`.
//!
//! The build environment has no registry access, so the real `serde`
//! cannot be fetched. The workspace only uses
//! `#[derive(Serialize, Deserialize)]` as inert markers (nothing is
//! serialized at runtime), so this shim provides marker traits plus the
//! no-op derives from the `serde_derive` shim under the usual names.
//! Swap for the real `serde` in `[workspace.dependencies]` when
//! registry access is available.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (never implemented — the
/// no-op derive emits nothing and nothing bounds on it).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (never implemented — the
/// no-op derive emits nothing and nothing bounds on it).
pub trait Deserialize<'de>: Sized {}
