//! Offline shim for `proptest`.
//!
//! The build environment has no registry access, so the real `proptest`
//! cannot be fetched. This shim implements the subset the workspace
//! uses: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`]/
//! [`prop_assume!`], `any::<T>()`, ranges and tuples as strategies,
//! [`array::uniform16`]/[`array::uniform32`], and [`collection::vec`].
//!
//! Cases are generated from a deterministic per-test RNG, so failures
//! reproduce exactly. Unlike the real proptest there is **no
//! shrinking** — a failure reports the case number and the assertion
//! message only. Swap for the real `proptest` in
//! `[workspace.dependencies]` when registry access is available.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assumption (`prop_assume!`) was not met; the case is skipped.
    Reject(String),
    /// A property assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Deterministic splitmix64 RNG driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one case of one property.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` by rejection sampling.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// A value generator (mirrors the generation half of
/// `proptest::strategy::Strategy`; no shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy for the full range of a type, as produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical full-range strategy (mirrors
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy for any value of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128).wrapping_sub(start as u128) as u64 + 1;
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Fixed-size array strategies (mirrors `proptest::array`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy producing `[S::Value; N]` from one element strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct UniformArray<S, const N: usize> {
        elem: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.elem.generate(rng))
        }
    }

    /// A strategy for `[S::Value; 16]`.
    pub fn uniform16<S: Strategy>(elem: S) -> UniformArray<S, 16> {
        UniformArray { elem }
    }

    /// A strategy for `[S::Value; 32]`.
    pub fn uniform32<S: Strategy>(elem: S) -> UniformArray<S, 32> {
        UniformArray { elem }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing a `Vec` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `elem` values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

/// Runs one property: generates `cases` inputs and evaluates the body.
///
/// Used by the [`proptest!`] macro expansion; not part of the public
/// proptest API.
pub fn run_property<F>(test_name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Stable per-test seed: hash of the test name, so regenerating the
    // same property replays the same cases.
    let mut seed = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
    }
    // Rejected cases (prop_assume!) are retried with fresh inputs, like
    // the real proptest, so assume-heavy properties still run the full
    // number of effective cases. A global rejection budget bounds
    // pathological assumptions.
    let max_rejects = config.cases.saturating_mul(8).max(1024);
    let mut rejected = 0u32;
    for case in 0..config.cases {
        let mut attempt = 0u64;
        loop {
            let mut rng = TestRng::new(seed.wrapping_add(case as u64).wrapping_add(attempt << 32));
            match body(&mut rng) {
                Ok(()) => break,
                Err(TestCaseError::Reject(msg)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "{test_name}: too many prop_assume! rejections \
                         ({rejected}, last: {msg})"
                    );
                    attempt += 1;
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{test_name}: case {case}/{} failed: {msg}", config.cases)
                }
            }
        }
    }
}

/// Everything a property-test file needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        @cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(stringify!($name), &config, |prop_rng| {
                    $( let $arg = $crate::Strategy::generate(&($strategy), prop_rng); )+
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
}

/// Asserts inequality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}` (both: `{:?}`)",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay within bounds.
        #[test]
        fn ranges_in_bounds(v in 10u64..20, w in 0u8..=255, f in crate::collection::vec(any::<u8>(), 1..9)) {
            prop_assert!((10..20).contains(&v));
            let _ = w;
            prop_assert!(!f.is_empty() && f.len() < 9);
        }

        /// Tuples and arrays generate elementwise.
        #[test]
        fn compound_strategies(t in (0u64..4, any::<bool>()), a in crate::array::uniform16(any::<u8>())) {
            prop_assert!(t.0 < 4);
            prop_assert_eq!(a.len(), 16);
        }

        /// Assumptions reject without failing.
        #[test]
        fn assume_rejects(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut rng_a = crate::TestRng::new(5);
        let mut rng_b = crate::TestRng::new(5);
        for _ in 0..32 {
            assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic_with_case_number() {
        crate::run_property(
            "always_fails",
            &crate::ProptestConfig::with_cases(4),
            |_rng| Err(crate::TestCaseError::fail("boom")),
        );
    }
}
