//! Offline shim for `rand` (0.8-style API).
//!
//! The build environment has no registry access, so the real `rand`
//! cannot be fetched. This shim provides the exact surface the
//! workspace uses — [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`Error`], and
//! [`rngs::StdRng`] — with a deterministic xoshiro256** generator
//! behind `StdRng`. Swap for the real `rand` in
//! `[workspace.dependencies]` when registry access is available.
//!
//! Statistical quality is adequate for simulation workloads; none of
//! this is used for cryptographic key material (the workspace's crypto
//! crate has its own entropy model).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by this
/// shim's generators, but part of the `RngCore` contract).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure via `Err`.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// A generator that can be instantiated from a seed (mirrors
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with splitmix64
    /// exactly as `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from the generator's full range
/// (the shim's stand-in for the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `Rng::gen_range` accepts (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Rejection sampling over u64 draws avoids modulo bias.
                let span = span as u64;
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return Standard::sample(rng);
                }
                if let Some(exclusive_end) = end.checked_add(1) {
                    (start..exclusive_end).sample_single(rng)
                } else {
                    // end == MAX but start > MIN: shift down by one.
                    (start - 1..end).sample_single(rng) + 1
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        self.start + (u as f32) * (self.end - self.start)
    }
}

/// Convenience extension methods over [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniformly from the type's full range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator behind the `StdRng` name.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (ChaCha12),
    /// but deterministic for a given seed, which is all the workspace
    /// relies on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(0u8..=255);
            let _ = i;
        }
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn gen_range_covers_span_uniformly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[rng.gen_range(0usize..8)] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }
}
